// Chaos soak: a Multi-Ring deployment under simultaneous message loss,
// repeated acceptor/coordinator crash-revive cycles and a learner
// restart, sweeping seeds. The safety net at the end: learners with the
// same subscriptions delivered identical sequences, overlapping
// subscriptions kept a consistent partial order, and no acknowledged
// message was lost.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "multiring/merge_learner.h"
#include "multiring/sim_deployment.h"

namespace mrp {
namespace {

using multiring::DeploymentOptions;
using multiring::MergeLearner;
using multiring::SimDeployment;
using ringpaxos::ProposerConfig;

using Key = std::tuple<GroupId, NodeId, std::uint64_t>;

struct Log {
  std::vector<Key> entries;
};

MergeLearner* AddLearner(SimDeployment& d, const std::vector<int>& rings, Log& log,
                         bool acks, std::vector<sim::SimNode*>* nodes = nullptr) {
  auto& node = d.net().AddNode();
  if (nodes != nullptr) nodes->push_back(&node);
  MergeLearner::Options mo;
  mo.send_delivery_acks = acks;
  mo.on_deliver = [&log](GroupId g, const paxos::ClientMsg& m) {
    log.entries.emplace_back(g, m.proposer, m.seq);
  };
  for (int r : rings) {
    ringpaxos::LearnerOptions lo;
    lo.ring = d.ring(r);
    mo.groups.push_back(lo);
    d.net().Subscribe(node.self(), d.ring(r).data_channel);
    d.net().Subscribe(node.self(), d.ring(r).control_channel);
  }
  auto learner = std::make_unique<MergeLearner>(std::move(mo));
  auto* raw = learner.get();
  node.BindProtocol(std::move(learner));
  return raw;
}

std::vector<Key> Dedup(const Log& log) {
  std::vector<Key> out;
  std::set<Key> seen;
  for (const auto& k : log.entries) {
    if (seen.insert(k).second) out.push_back(k);
  }
  return out;
}

class ChaosSoak : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSoak, SafetyHoldsUnderCrashLossAndChurn) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  DeploymentOptions opts;
  opts.n_rings = 2;
  opts.ring_size = 2;
  opts.n_spares = 1;
  opts.net.seed = seed;
  opts.net.loss_probability = 0.01;
  opts.lambda_per_sec = 4000;
  opts.suspect_after = Millis(50);
  SimDeployment d(opts);

  Log both_a, both_b, only0;
  std::vector<sim::SimNode*> learner_nodes;
  auto* la = AddLearner(d, {0, 1}, both_a, /*acks=*/true, &learner_nodes);
  AddLearner(d, {0, 1}, both_b, false, &learner_nodes);
  AddLearner(d, {0}, only0, false, &learner_nodes);

  std::vector<ringpaxos::Proposer*> props;
  for (int r = 0; r < 2; ++r) {
    ProposerConfig pc;
    pc.max_outstanding = 6;
    pc.payload_size = 2500;
    pc.retry_timeout = Millis(150);
    props.push_back(d.AddProposer(r, pc));
  }
  d.Start();

  // 8 seconds of churn: every 500 ms toggle a random acceptor of a
  // random ring (keeping universe majorities), occasionally bounce the
  // non-acking learner.
  Rng rng(seed * 7919 + 1);
  std::vector<std::vector<bool>> down(2, std::vector<bool>(3, false));
  for (int step = 0; step < 16; ++step) {
    d.RunFor(Millis(500));
    const int ring = static_cast<int>(rng.below(2));
    const int victim = static_cast<int>(rng.below(3));
    auto& flags = down[static_cast<std::size_t>(ring)];
    int down_count = 0;
    for (bool v : flags) down_count += v ? 1 : 0;
    if (flags[static_cast<std::size_t>(victim)]) {
      flags[static_cast<std::size_t>(victim)] = false;
      d.acceptor_node(ring, victim)->SetDown(false);
    } else if (down_count == 0) {
      flags[static_cast<std::size_t>(victim)] = true;
      d.acceptor_node(ring, victim)->SetDown(true);
    }
    if (step == 7) {
      // Bounce a learner mid-run; it must rejoin via recovery.
      learner_nodes[1]->SetDown(true);
    }
    if (step == 9) learner_nodes[1]->SetDown(false);
  }
  // Quiesce: revive everything, drain retries.
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < 3; ++i) d.acceptor_node(r, i)->SetDown(false);
  }
  d.RunFor(Seconds(5));

  ASSERT_GT(both_a.entries.size(), 500u) << "no progress under churn";

  // Uniform agreement on identical subscriptions (the bounced learner's
  // log is a sub-sequence; compare deduped common prefix consistency).
  const auto da = Dedup(both_a);
  const auto db = Dedup(both_b);
  std::map<Key, std::size_t> pos;
  for (std::size_t i = 0; i < da.size(); ++i) pos.emplace(da[i], i);
  std::size_t last = 0;
  bool first = true;
  for (const auto& k : db) {
    auto it = pos.find(k);
    ASSERT_NE(it, pos.end()) << "learner B delivered something A never did";
    if (!first) {
      ASSERT_GE(it->second, last) << "order diverged";
    }
    first = false;
    last = it->second;
  }
  // Partial order against the single-group learner.
  std::map<Key, std::size_t> pos0;
  const auto d0 = Dedup(only0);
  for (std::size_t i = 0; i < d0.size(); ++i) pos0.emplace(d0[i], i);
  last = 0;
  first = true;
  for (const auto& k : da) {
    auto it = pos0.find(k);
    if (it == pos0.end()) continue;
    if (!first) {
      ASSERT_GE(it->second, last) << "partial order diverged";
    }
    first = false;
    last = it->second;
  }
  // Validity: acked messages were delivered (or still tracked).
  for (std::size_t p = 0; p < props.size(); ++p) {
    std::set<std::uint64_t> seen;
    for (const auto& [g, pr, seq] : both_a.entries) {
      if (g == static_cast<GroupId>(p)) seen.insert(seq);
    }
    const auto inflight = props[p]->outstanding_seqs();
    const std::set<std::uint64_t> inflight_set(inflight.begin(), inflight.end());
    for (std::uint64_t s = 1; s <= props[p]->acked_seq(); ++s) {
      ASSERT_TRUE(seen.count(s) || inflight_set.count(s))
          << "ring " << p << " seq " << s << " lost";
    }
  }
  (void)la;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak, ::testing::Values(5, 23, 71, 137));

}  // namespace
}  // namespace mrp
