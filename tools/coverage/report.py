#!/usr/bin/env python3
"""Line-coverage gate for the Multi-Ring Paxos reproduction.

Drives gcov (JSON intermediate format, gcc 9+) over every object file in
an MRP_COVERAGE=ON build tree, merges per-line execution counts across
translation units (headers appear in many TUs; a line is covered if ANY
TU executed it), and enforces a soft floor on the protocol core:
src/paxos, src/ringpaxos, src/multiring.

The floor is "soft" in the sense that it is set below the current actual
coverage and only moves up deliberately (ratchet, never auto): its job
is to catch a new subsystem landing with no tests at all, not to fight
over single percentage points. See docs/STATIC_ANALYSIS.md.

Usage:
  tools/coverage/report.py --build-dir build-cov [--out coverage.txt]
                           [--floor 70] [--gcov gcov]

Exit status: 0 floor met, 1 floor missed, 2 usage/tooling error.
"""

import argparse
import gzip
import json
import os
import shutil
import subprocess
import sys
import tempfile

GATED_DIRS = ("src/paxos", "src/ringpaxos", "src/multiring")


def find_repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def collect_gcno(build_dir):
    out = []
    for dirpath, _dirs, files in os.walk(build_dir):
        for fn in files:
            if fn.endswith(".gcno"):
                out.append(os.path.join(dirpath, fn))
    return sorted(out)


def run_gcov(gcov, gcno_files, repo_root):
    """Returns {rel_source_path: {line_no: max_count}} merged across TUs."""
    merged = {}
    with tempfile.TemporaryDirectory(prefix="mrp-cov-") as tmp:
        for i, gcno in enumerate(gcno_files):
            wd = os.path.join(tmp, str(i))
            os.mkdir(wd)
            proc = subprocess.run(
                [gcov, "--json-format", "--branch-probabilities", gcno],
                cwd=wd, capture_output=True, text=True, check=False)
            if proc.returncode != 0:
                # A stale .gcno (e.g. version skew) should not kill the
                # whole report; note it and move on.
                print(f"coverage: gcov failed on {os.path.basename(gcno)}: "
                      f"{proc.stderr.strip().splitlines()[:1]}", file=sys.stderr)
                continue
            for fn in os.listdir(wd):
                if not fn.endswith(".gcov.json.gz"):
                    continue
                with gzip.open(os.path.join(wd, fn), "rt", encoding="utf-8") as f:
                    doc = json.load(f)
                for entry in doc.get("files", []):
                    src = entry.get("file", "")
                    if not os.path.isabs(src):
                        src = os.path.normpath(
                            os.path.join(doc.get("current_working_directory", wd), src))
                    rel = os.path.relpath(src, repo_root).replace(os.sep, "/")
                    if rel.startswith(".."):
                        continue  # system/third-party header
                    lines = merged.setdefault(rel, {})
                    for ln in entry.get("lines", []):
                        no = ln.get("line_number")
                        cnt = ln.get("count", 0)
                        if no is not None:
                            lines[no] = max(lines.get(no, 0), cnt)
    return merged


def summarize(merged, prefix):
    total = covered = 0
    for rel, lines in merged.items():
        if not rel.startswith(prefix):
            continue
        total += len(lines)
        covered += sum(1 for c in lines.values() if c > 0)
    return covered, total


def pct(covered, total):
    return 100.0 * covered / total if total else 0.0


def main(argv):
    parser = argparse.ArgumentParser(prog="coverage/report.py", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", required=True,
                        help="MRP_COVERAGE=ON build tree holding .gcno/.gcda files")
    parser.add_argument("--out", default=None, help="also write the report to this file")
    parser.add_argument("--floor", type=float, default=70.0,
                        help="minimum combined line coverage over "
                             f"{'+'.join(GATED_DIRS)} (default: %(default)s)")
    parser.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"),
                        help="gcov binary (default: $GCOV or 'gcov')")
    args = parser.parse_args(argv)

    if shutil.which(args.gcov) is None:
        print(f"coverage: {args.gcov} not installed; skipping (CI enforces it)",
              file=sys.stderr)
        return 0
    # gcov runs from a scratch directory, so the .gcno paths handed to it
    # must be absolute.
    args.build_dir = os.path.abspath(args.build_dir)
    if not os.path.isdir(args.build_dir):
        print(f"coverage: not a directory: {args.build_dir}", file=sys.stderr)
        return 2
    gcno = collect_gcno(args.build_dir)
    if not gcno:
        print(f"coverage: no .gcno files under {args.build_dir} -- "
              "configure with -DMRP_COVERAGE=ON and build first", file=sys.stderr)
        return 2

    repo_root = find_repo_root()
    merged = run_gcov(args.gcov, gcno, repo_root)

    rows = []
    for d in GATED_DIRS:
        c, t = summarize(merged, d + "/")
        rows.append((d, c, t))
    gated_c = sum(r[1] for r in rows)
    gated_t = sum(r[2] for r in rows)
    src_c, src_t = summarize(merged, "src/")

    ok = pct(gated_c, gated_t) >= args.floor
    lines = [f"coverage report ({len(gcno)} object files, gcov json)"]
    for d, c, t in rows:
        lines.append(f"  {d:<16} {pct(c, t):6.1f}%  ({c}/{t} lines)")
    lines.append(f"  {'gated total':<16} {pct(gated_c, gated_t):6.1f}%  "
                 f"({gated_c}/{gated_t} lines)  floor {args.floor:.1f}%  "
                 f"-> {'OK' if ok else 'BELOW FLOOR'}")
    lines.append(f"  {'all of src/':<16} {pct(src_c, src_t):6.1f}%  "
                 f"({src_c}/{src_t} lines)")
    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
