// Model-checking environment (docs/MODEL_CHECKING.md): a lean, fully
// controller-driven implementation of Env for exhaustive interleaving
// exploration. Unlike sim::SimNetwork — which models latency, loss rates
// and bandwidth — McNet delivers every message with ZERO delay, so the
// set of in-flight messages at the current simulated time IS the enabled
// set, and every ordering decision among same-time events is delegated
// to a Controller through the sim::Scheduler Strategy hook. Timers are
// the only thing that advances the clock.
//
// Branch-point vocabulary (mirrors src/check/fault_plan.h):
//   * event order      — which enabled event fires next (Kind::kOrder);
//   * message drop     — a sticky DropPolicy (message type, from, to)
//                        evaluated at send time, enabled or not by one
//                        binary Kind::kPolicy choice at world setup;
//   * message duplicate— the same, with DropPolicy::duplicate;
//   * crash/restart    — a scheduled node crash + restart pair, enabled
//                        by one binary Kind::kPolicy choice.
//
// Everything that can influence future behaviour — node up/down state,
// role state (via registered fingerprint thunks), in-flight messages,
// pending timer deadlines, active policies, the crash schedule and the
// clock itself — folds into McNet::Fingerprint(), the digest the
// explorer's visited-state table is keyed on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/fingerprint.h"
#include "common/message.h"
#include "common/metrics.h"
#include "common/rand.h"
#include "common/types.h"
#include "net/codec.h"
#include "sim/scheduler.h"

namespace mrp::mc {

// The exploration driver's decision hook. One Controller instance serves
// a whole run: the world asks it which enabled event fires (kOrder, with
// the enabled set attached) and whether optional faults are active
// (kPolicy, binary, asked once each during world construction). OnFired
// observes every event that actually fires, chosen or forced, so the
// controller can maintain sleep sets.
class Controller {
 public:
  enum class Kind : std::uint8_t { kOrder = 0, kPolicy = 1 };

  virtual ~Controller() = default;
  virtual std::size_t Choose(std::size_t n, Kind kind,
                             const std::vector<sim::Scheduler::EventInfo>*
                                 enabled) = 0;
  virtual void OnFired(const sim::EventTag& tag) { (void)tag; }
};

// A sticky message fault, matched at send time. kNoNode = wildcard.
struct DropPolicy {
  std::string type_name;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  bool duplicate = false;  // false = drop, true = deliver twice

  bool Matches(const char* type, NodeId f, NodeId t) const {
    return type_name == type && (from == kNoNode || from == f) &&
           (to == kNoNode || to == t);
  }
};

// One crash/restart pair in the schedule (restart_at past the horizon
// models a crash without recovery).
struct CrashPoint {
  NodeId node = kNoNode;
  TimePoint at{0};
  TimePoint restart_at{0};
};

class McNet;

// Env implementation for one model-checked node. All sends route through
// the owning McNet; timers are tagged scheduler events that are dropped
// (not deferred) when they fire while the node is down.
class McNode final : public Env {
 public:
  McNode(McNet* net, NodeId id)
      : net_(net), id_(id), rng_(0x9e3779b97f4a7c15ULL + id) {}

  NodeId self() const override { return id_; }
  TimePoint now() const override;
  void Send(NodeId to, MessagePtr m) override;
  void Multicast(ChannelId channel, MessagePtr m) override;
  TimerId SetTimer(Duration delay, std::function<void()> callback) override;
  void CancelTimer(TimerId id) override;
  Rng& rng() override { return rng_; }
  MetricsRegistry& metrics() override { return registry_; }

  bool up() const { return up_; }

 private:
  friend class McNet;

  McNet* net_;
  NodeId id_;
  bool up_ = true;
  Rng rng_;
  MetricsRegistry registry_;
  TimerId next_timer_ = 0;
  // Live timers: id -> (scheduler event, absolute deadline). The
  // deadline multiset is part of the node's fingerprint; the ids are
  // run-local bookkeeping and are not.
  std::map<TimerId, std::pair<sim::Scheduler::EventId, TimePoint>> timers_;
  std::vector<Protocol*> protocols_;
  std::vector<std::function<std::uint64_t()>> fingerprints_;
};

class McNet {
 public:
  // order_branching = false keeps the scheduler's historical
  // (time, insertion) order: no kOrder choice points are generated, so
  // a config can restrict its branching to the policy vocabulary.
  McNet(Controller* controller, bool order_branching)
      : controller_(controller) {
    if (order_branching) {
      strategy_ = std::make_unique<Bridge>(this);
      sched_.SetStrategy(strategy_.get());
    }
  }
  McNet(const McNet&) = delete;
  McNet& operator=(const McNet&) = delete;

  Env& AddNode(NodeId id) {
    auto [it, inserted] = nodes_.try_emplace(id, nullptr);
    if (inserted) it->second = std::make_unique<McNode>(this, id);
    return *it->second;
  }

  // Hosts a role on `id` (borrowed; the harness owns protocol objects)
  // with the state-digest thunk folded into the global fingerprint.
  void AddRole(NodeId id, Protocol* proto,
               std::function<std::uint64_t()> fingerprint) {
    McNode& n = Node(id);
    n.protocols_.push_back(proto);
    if (fingerprint) n.fingerprints_.push_back(std::move(fingerprint));
  }

  void Subscribe(ChannelId channel, NodeId id) {
    auto& subs = channels_[channel];
    if (std::find(subs.begin(), subs.end(), id) == subs.end())
      subs.push_back(id);
  }

  void AddPolicy(DropPolicy p) { policies_.push_back(std::move(p)); }

  // Schedules a crash (+ restart, when within reach) as generic tagged
  // events; both the schedule and the resulting up/down bits fingerprint.
  void ScheduleCrash(const CrashPoint& cp) {
    crash_schedule_.push_back(cp);
    sched_.At(cp.at, sim::EventTag{sim::EventTag::Kind::kGeneric, cp.node, 1},
              Wrap({sim::EventTag::Kind::kGeneric, cp.node, 1},
                   [this, cp] { SetDown(cp.node); }));
    sched_.At(cp.restart_at,
              sim::EventTag{sim::EventTag::Kind::kGeneric, cp.node, 2},
              Wrap({sim::EventTag::Kind::kGeneric, cp.node, 2},
                   [this, cp] { Restart(cp.node); }));
  }

  // Calls OnStart on every hosted role, in node-id order.
  void Start() {
    for (auto& [id, node] : nodes_) {
      for (Protocol* p : node->protocols_) p->OnStart(*node);
    }
  }

  TimePoint now() const { return sched_.now(); }
  TimePoint NextEventTime(TimePoint fallback) {
    return sched_.NextEventTime(fallback);
  }

  // Fires exactly one event (the controller picks among ties when order
  // branching is on). False when nothing is pending.
  bool Step() { return sched_.RunOne(); }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }

  // Global state digest. Deliberately EXCLUDES: timer ids (run-local
  // sequence numbers), rng cursors, metrics, and timestamps protocols
  // stashed internally (role fingerprints exclude timing state) — see
  // docs/MODEL_CHECKING.md for the soundness discussion.
  std::uint64_t Fingerprint() const {
    Fingerprinter f;
    f.U64(static_cast<std::uint64_t>(sched_.now().count()));
    for (const auto& [id, node] : nodes_) {
      f.U32(id);
      f.Bool(node->up_);
      for (const auto& fp : node->fingerprints_) f.U64(fp());
      f.U64(node->timers_.size());
      std::vector<std::uint64_t> deadlines;
      deadlines.reserve(node->timers_.size());
      for (const auto& [tid, ev] : node->timers_)
        deadlines.push_back(static_cast<std::uint64_t>(ev.second.count()));
      std::sort(deadlines.begin(), deadlines.end());
      for (std::uint64_t d : deadlines) f.U64(d);
    }
    std::vector<std::uint64_t> flight;
    flight.reserve(in_flight_.size());
    for (const auto& [key, h] : in_flight_) {
      Fingerprinter g;
      g.U32(key.first);
      g.U32(key.second);
      g.U64(h);
      flight.push_back(g.digest());
    }
    std::sort(flight.begin(), flight.end());
    f.U64(flight.size());
    for (std::uint64_t h : flight) f.U64(h);
    for (const auto& p : policies_) {
      f.Str(p.type_name);
      f.U32(p.from);
      f.U32(p.to);
      f.Bool(p.duplicate);
    }
    for (const auto& cp : crash_schedule_) {
      f.U32(cp.node);
      f.U64(static_cast<std::uint64_t>(cp.at.count()));
      f.U64(static_cast<std::uint64_t>(cp.restart_at.count()));
    }
    return f.digest();
  }

  void SetDown(NodeId id) {
    McNode& n = Node(id);
    n.up_ = false;
    // Timers die with the process; a restarted node re-arms its own in
    // OnStart (the sim::SimNode crash semantics).
    for (auto& [tid, ev] : n.timers_) sched_.Cancel(ev.first);
    n.timers_.clear();
  }

  void Restart(NodeId id) {
    McNode& n = Node(id);
    if (n.up_) return;
    n.up_ = true;
    for (Protocol* p : n.protocols_) p->OnStart(n);
  }

 private:
  friend class McNode;

  struct Bridge final : sim::Scheduler::Strategy {
    explicit Bridge(McNet* net) : net(net) {}
    std::size_t PickNext(
        const std::vector<sim::Scheduler::EventInfo>& enabled) override {
      return net->controller_->Choose(enabled.size(), Controller::Kind::kOrder,
                                      &enabled);
    }
    McNet* net;
  };

  McNode& Node(NodeId id) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      AddNode(id);
      it = nodes_.find(id);
    }
    return *it->second;
  }

  // 32-bit content class of a message: wire bytes when encodable, else
  // type name + size. Same content => same class, across runs.
  static std::uint32_t ClassOf(const MessageBase& m, std::uint64_t* full) {
    Fingerprinter f;
    const Bytes bytes = net::EncodeMessage(m);
    if (!bytes.empty()) {
      f.Bytes(bytes.data(), bytes.size());
    } else {
      f.Str(m.TypeName());
      f.U64(m.WireSize());
    }
    const std::uint64_t h = f.digest();
    if (full != nullptr) *full = h;
    return static_cast<std::uint32_t>(h ^ (h >> 32));
  }

  // Wraps an event body so the controller observes every firing.
  std::function<void()> Wrap(sim::EventTag tag, std::function<void()> body) {
    return [this, tag, body = std::move(body)] {
      controller_->OnFired(tag);
      body();
    };
  }

  void Deliver(NodeId from, NodeId to, const MessagePtr& m) {
    std::uint64_t content = 0;
    const std::uint32_t klass = ClassOf(*m, &content);
    int copies = 1;
    for (const auto& p : policies_) {
      if (!p.Matches(m->TypeName(), from, to)) continue;
      if (p.duplicate) {
        copies = 2;
      } else {
        ++dropped_;
        return;
      }
    }
    if (!Node(to).up_) {
      ++dropped_;
      return;
    }
    for (int c = 0; c < copies; ++c) {
      if (c > 0) ++duplicated_;
      in_flight_.push_back({{from, to}, content});
      const sim::EventTag tag{sim::EventTag::Kind::kDelivery, to, klass};
      sched_.At(sched_.now(), tag, Wrap(tag, [this, from, to, content, m] {
                  auto it = std::find(in_flight_.begin(), in_flight_.end(),
                                      Flight{{from, to}, content});
                  if (it != in_flight_.end()) in_flight_.erase(it);
                  McNode& n = Node(to);
                  if (!n.up_) {
                    ++dropped_;
                    return;
                  }
                  for (Protocol* p : n.protocols_) p->OnMessage(n, from, m);
                }));
    }
  }

  using Flight = std::pair<std::pair<NodeId, NodeId>, std::uint64_t>;

  Controller* controller_;
  sim::Scheduler sched_;
  std::unique_ptr<Bridge> strategy_;
  std::map<NodeId, std::unique_ptr<McNode>> nodes_;
  std::map<ChannelId, std::vector<NodeId>> channels_;
  std::vector<DropPolicy> policies_;
  std::vector<CrashPoint> crash_schedule_;
  std::vector<Flight> in_flight_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
};

inline TimePoint McNode::now() const { return net_->sched_.now(); }

inline void McNode::Send(NodeId to, MessagePtr m) {
  net_->Deliver(id_, to, m);
}

inline void McNode::Multicast(ChannelId channel, MessagePtr m) {
  auto it = net_->channels_.find(channel);
  if (it == net_->channels_.end()) return;
  for (NodeId sub : it->second) {
    if (sub != id_) net_->Deliver(id_, sub, m);
  }
}

inline TimerId McNode::SetTimer(Duration delay, std::function<void()> cb) {
  const TimerId tid = ++next_timer_;
  const TimePoint deadline = net_->sched_.now() + delay;
  const sim::EventTag tag{sim::EventTag::Kind::kTimer, id_,
                          static_cast<std::uint32_t>(tid)};
  const sim::Scheduler::EventId ev = net_->sched_.At(
      deadline, tag, net_->Wrap(tag, [this, tid, cb = std::move(cb)] {
        auto it = timers_.find(tid);
        if (it == timers_.end()) return;  // cancelled or node restarted
        timers_.erase(it);
        if (up_) cb();
      }));
  timers_[tid] = {ev, deadline};
  return tid;
}

inline void McNode::CancelTimer(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return;
  net_->sched_.Cancel(it->second.first);
  timers_.erase(it);
}

}  // namespace mrp::mc
