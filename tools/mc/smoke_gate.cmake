# Two-run determinism gate for the bounded ring2 exploration: the full
# stdout of `mrp_mc --config ring2 --max-runs 200` must be byte-identical
# across runs (docs/MODEL_CHECKING.md).
foreach(run 1 2)
  execute_process(
    COMMAND ${MRP_MC} --config ring2 --max-runs 200
    OUTPUT_FILE ${WORKDIR}/ring2_run${run}.txt
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "mrp_mc --config ring2 failed (exit ${rc})")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/ring2_run1.txt ${WORKDIR}/ring2_run2.txt
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "ring2 exploration output differs between runs")
endif()
message(STATUS "mc-smoke: ring2 bounded exploration is deterministic")
