// Explicit-state exploration engine (docs/MODEL_CHECKING.md). The
// explorer is a Controller: each run is the deterministic function of
// the integer sequence returned by Choose(), so the search tree over
// runs is the tree over choice vectors. A depth-first walk with
//
//   * sleep sets        — DPOR-style partial-order reduction. Two events
//                         are independent iff they target different
//                         nodes (each event mutates exactly one node's
//                         state plus the message soup, and soup
//                         insertions commute). When the subtree firing
//                         event e at a choice point has been explored,
//                         e is put to sleep in the sibling subtrees and
//                         stays asleep until a dependent (same-node)
//                         event fires; a choice point whose every
//                         enabled event sleeps is cut.
//   * visited states    — fingerprint table keyed on world digest XOR
//                         sleep-set digest, consulted only in fresh
//                         territory (past the replayed prefix).
//   * iterative deepening — the choice-depth budget doubles until a
//                         sweep finishes without hitting it; a sweep
//                         with zero depth cuts makes the result
//                         "exhausted" (tables are cleared per level, so
//                         a cut subtree can never poison a deeper
//                         sweep).
//
// The oracle verdict is polled after every transition, so a violation
// is caught at the step it happens and the offending choice vector is
// the counterexample. Shrinking greedily rewrites choices toward 0 (the
// benign default: first enabled event, fault policy off) and truncates,
// replaying after each edit — the result is a minimal replayable trace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fingerprint.h"
#include "tools/mc/mc_env.h"

namespace mrp::mc {

// What the explorer needs from a model-checked deployment. A fresh World
// is built per run (the factory receives the Controller so policy
// choices can be taken during construction).
class World {
 public:
  virtual ~World() = default;
  // Fires one event within the config's horizon; false once quiesced.
  virtual bool Step() = 0;
  virtual std::uint64_t Fingerprint() const = 0;
  virtual bool OracleOk() const = 0;
  virtual void Finish() = 0;  // end-of-run cross-learner oracle checks
  virtual std::string FirstOracle() const = 0;
  virtual std::uint64_t FeedDigest() const = 0;
  virtual std::string OracleReport() const = 0;
};

struct ExploreStats {
  std::uint64_t runs = 0;
  std::uint64_t transitions = 0;
  std::uint64_t distinct_states = 0;  // visited-table size, final sweep
  std::uint64_t sleep_cuts = 0;
  std::uint64_t visited_cuts = 0;
  std::uint64_t depth_cuts = 0;
  std::size_t final_depth_limit = 0;
  bool exhausted = false;        // a sweep completed with zero depth cuts
  bool budget_exhausted = false; // run budget hit first
  bool violation = false;
  std::vector<std::size_t> violating_choices;
  std::string violated_oracle;
  std::uint64_t feed_digest = 0;
  std::string report;

  std::string StatusWord() const {
    if (violation) return "violation";
    if (exhausted) return "exhausted";
    if (budget_exhausted) return "budget-exhausted";
    return "depth-capped";
  }
};

class Explorer final : public Controller {
 public:
  using WorldFactory =
      std::function<std::unique_ptr<World>(Controller* controller)>;

  struct Options {
    std::uint64_t max_runs = 200000;
    std::size_t initial_depth = 16;
    std::size_t max_depth = 1 << 14;
    bool sleep_sets = true;   // false + visited=false => naive enumeration
    bool visited = true;
  };

  Explorer(WorldFactory factory, Options opts)
      : factory_(std::move(factory)), opts_(opts) {}

  // ---- Exhaustive / bounded search ----
  ExploreStats Explore() {
    ExploreStats st;
    for (std::size_t depth = opts_.initial_depth;; depth *= 2) {
      depth_limit_ = depth;
      st.final_depth_limit = depth;
      visited_table_.clear();
      path_.clear();
      level_depth_cuts_ = 0;
      bool budget_hit = false;
      while (true) {
        const RunOutcome out = RunOnce(&st);
        if (out.violated) {
          st.violation = true;
          st.violating_choices = CurrentChoices();
          st.violated_oracle = out.oracle;
          st.feed_digest = out.digest;
          st.report = out.report;
          return st;
        }
        if (st.runs >= opts_.max_runs) {
          budget_hit = true;
          break;
        }
        if (!Backtrack()) break;
      }
      st.distinct_states = visited_table_.size();
      st.depth_cuts += level_depth_cuts_;
      if (budget_hit) {
        st.budget_exhausted = true;
        return st;
      }
      if (level_depth_cuts_ == 0) {
        st.exhausted = true;
        return st;
      }
      if (depth * 2 > opts_.max_depth) return st;
    }
  }

  // ---- Single-run replay of a fixed choice vector ----
  struct RunResult {
    bool violated = false;
    std::string oracle;
    std::uint64_t feed_digest = 0;
    std::uint64_t transitions = 0;
    std::string report;
  };

  RunResult Replay(const std::vector<std::size_t>& choices) {
    fixed_mode_ = true;
    fixed_ = choices;
    cursor_ = 0;
    abort_run_ = false;
    std::unique_ptr<World> world = factory_(this);
    RunResult r;
    bool violated = false;
    while (world->Step()) {
      ++r.transitions;
      if (!world->OracleOk()) {
        violated = true;
        break;
      }
    }
    if (!violated) {
      world->Finish();
      violated = !world->OracleOk();
    }
    r.violated = violated;
    r.oracle = world->FirstOracle();
    r.feed_digest = world->FeedDigest();
    r.report = world->OracleReport();
    fixed_mode_ = false;
    fixed_.clear();
    return r;
  }

  // Greedy counterexample minimisation: rewrite every choice toward 0,
  // keep each edit that still violates `oracle`, iterate to a fixpoint,
  // then drop the trailing zeros (absent choices default to 0).
  std::vector<std::size_t> Shrink(std::vector<std::size_t> choices,
                                  const std::string& oracle) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < choices.size(); ++i) {
        if (choices[i] == 0) continue;
        for (std::size_t v = 0; v < choices[i]; ++v) {
          auto trial = choices;
          trial[i] = v;
          const RunResult r = Replay(trial);
          if (r.violated && r.oracle == oracle) {
            choices = trial;
            progress = true;
            break;
          }
        }
      }
    }
    while (!choices.empty() && choices.back() == 0) choices.pop_back();
    return choices;
  }

  // ---- Controller ----
  std::size_t Choose(std::size_t n, Kind kind,
                     const std::vector<sim::Scheduler::EventInfo>* enabled)
      override {
    if (n == 0) return 0;
    if (fixed_mode_) {
      std::size_t c = cursor_ < fixed_.size() ? fixed_[cursor_] : 0;
      ++cursor_;
      return c < n ? c : 0;
    }
    if (abort_run_) return 0;
    if (cursor_ == path_.size()) {
      // Fresh choice point: open a frame (or cut).
      if (path_.size() >= depth_limit_) {
        ++level_depth_cuts_;
        abort_run_ = true;
        return 0;
      }
      Frame fr;
      fr.n = n;
      fr.kind = kind;
      fr.sleep_in = cur_sleep_;
      if (kind == Kind::kOrder && enabled != nullptr) {
        fr.sigs.reserve(enabled->size());
        for (const auto& e : *enabled) fr.sigs.push_back(Sig(e.tag));
      }
      std::size_t first = 0;
      if (kind == Kind::kOrder && opts_.sleep_sets) {
        while (first < n && Sleeping(fr.sleep_in, fr.sigs[first])) ++first;
        if (first == n) {
          ++sleep_cuts_;
          abort_run_ = true;
          return 0;
        }
      }
      fr.chosen = first;
      path_.push_back(std::move(fr));
    }
    return Consume();
  }

  void OnFired(const sim::EventTag& tag) override {
    if (fixed_mode_ || !opts_.sleep_sets || cur_sleep_.empty()) return;
    // A fired event wakes every sleeping event on the same node (they
    // are dependent; the commuting argument no longer applies).
    const NodeId node = tag.node;
    cur_sleep_.erase(
        std::remove_if(cur_sleep_.begin(), cur_sleep_.end(),
                       [node](std::uint64_t s) { return NodeOf(s) == node; }),
        cur_sleep_.end());
  }

 private:
  struct Frame {
    std::size_t n = 0;
    std::size_t chosen = 0;
    Kind kind = Kind::kOrder;
    std::vector<std::uint64_t> sigs;      // kOrder only
    std::vector<std::uint64_t> sleep_in;  // sleep set entering this point
  };

  struct RunOutcome {
    bool violated = false;
    std::string oracle;
    std::uint64_t digest = 0;
    std::string report;
  };

  static std::uint64_t Sig(const sim::EventTag& tag) {
    const std::uint32_t mix =
        tag.klass ^ (static_cast<std::uint32_t>(tag.kind) * 0x9e3779b9u);
    return (static_cast<std::uint64_t>(tag.node) << 32) | mix;
  }
  static NodeId NodeOf(std::uint64_t sig) {
    return static_cast<NodeId>(sig >> 32);
  }
  static bool Sleeping(const std::vector<std::uint64_t>& sleep,
                       std::uint64_t sig) {
    return std::find(sleep.begin(), sleep.end(), sig) != sleep.end();
  }

  // Consumes the frame at cursor_ (replayed or fresh) and evolves the
  // running sleep set: the chosen event's siblings to its left — already
  // explored here, or inherited asleep — sleep in its subtree until a
  // same-node event fires.
  std::size_t Consume() {
    const Frame& f = path_[cursor_];
    if (f.kind == Kind::kOrder && opts_.sleep_sets) {
      const NodeId chosen_node = NodeOf(f.sigs[f.chosen]);
      std::vector<std::uint64_t> next;
      next.reserve(f.sleep_in.size() + f.chosen);
      for (std::uint64_t s : f.sleep_in) {
        if (NodeOf(s) != chosen_node) next.push_back(s);
      }
      for (std::size_t k = 0; k < f.chosen; ++k) {
        if (NodeOf(f.sigs[k]) != chosen_node &&
            !Sleeping(next, f.sigs[k])) {
          next.push_back(f.sigs[k]);
        }
      }
      cur_sleep_ = std::move(next);
    }
    ++cursor_;
    return f.chosen;
  }

  std::uint64_t SleepHash() const {
    std::vector<std::uint64_t> sorted = cur_sleep_;
    std::sort(sorted.begin(), sorted.end());
    Fingerprinter f;
    for (std::uint64_t s : sorted) f.U64(s);
    return f.digest();
  }

  std::vector<std::size_t> CurrentChoices() const {
    std::vector<std::size_t> out;
    out.reserve(path_.size());
    for (const Frame& f : path_) out.push_back(f.chosen);
    return out;
  }

  RunOutcome RunOnce(ExploreStats* st) {
    cursor_ = 0;
    cur_sleep_.clear();
    abort_run_ = false;
    const std::size_t replay_len = path_.size();
    std::unique_ptr<World> world = factory_(this);
    ++st->runs;
    RunOutcome out;
    bool cut = false;
    while (!abort_run_) {
      if (!world->Step()) break;
      ++st->transitions;
      if (!world->OracleOk()) {
        out.violated = true;
        break;
      }
      if (abort_run_) break;  // depth/sleep cut inside this step
      if (opts_.visited && cursor_ >= replay_len) {
        const std::uint64_t key = world->Fingerprint() ^ SleepHash();
        if (!visited_table_.insert(key).second) {
          ++st->visited_cuts;
          cut = true;
          break;
        }
      }
    }
    if (!out.violated && !cut && !abort_run_) {
      world->Finish();
      out.violated = !world->OracleOk();
    }
    if (out.violated) {
      out.oracle = world->FirstOracle();
      out.digest = world->FeedDigest();
      out.report = world->OracleReport();
    }
    st->sleep_cuts = sleep_cuts_;
    return out;
  }

  // Advances the deepest frame to its next unslept alternative; pops
  // finished frames. False when the tree is exhausted.
  bool Backtrack() {
    while (!path_.empty()) {
      Frame& f = path_.back();
      std::size_t next = f.chosen + 1;
      if (f.kind == Kind::kOrder && opts_.sleep_sets) {
        while (next < f.n && Sleeping(f.sleep_in, f.sigs[next])) ++next;
      }
      if (next < f.n) {
        f.chosen = next;
        return true;
      }
      path_.pop_back();
    }
    return false;
  }

  WorldFactory factory_;
  Options opts_;

  std::vector<Frame> path_;
  std::size_t cursor_ = 0;
  std::vector<std::uint64_t> cur_sleep_;
  bool abort_run_ = false;
  std::size_t depth_limit_ = 0;
  std::uint64_t level_depth_cuts_ = 0;
  std::uint64_t sleep_cuts_ = 0;
  std::unordered_set<std::uint64_t> visited_table_;

  bool fixed_mode_ = false;
  std::vector<std::size_t> fixed_;
};

}  // namespace mrp::mc
