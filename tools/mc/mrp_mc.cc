// mrp_mc — explicit-state model checker for small Multi-Ring Paxos
// deployments (docs/MODEL_CHECKING.md).
//
// Configurations:
//   ring1      one ring, 3 acceptors, 1 learner, 2 client commands; all
//              fail-over timers pushed past the horizon, event-order
//              branching ON. Small enough to explore EXHAUSTIVELY.
//   ring2      two rings merged by a Multi-Ring learner, with a crash/
//              restart and a message-duplication branch point; explored
//              under a bounded run budget (the mc-smoke determinism
//              gate).
//   known-bug  re-injects the historical CurrentLayoutAlive sub-majority
//              bug (RingConfig::test_unsafe_submajority_layout) and
//              searches over message-drop policies until the agreement
//              oracle fires; the counterexample is shrunk and emitted as
//              a replayable JSON artifact.
//
// Usage:
//   mrp_mc --config NAME [--naive] [--compare] [--max-runs N]
//          [--depth N] [--artifact FILE] [--replay FILE] [--self-check]
//
// Exit codes: 0 = explored with no violation (or replay confirmed,
// or self-check passed), 1 = violation found (or replay/self-check
// mismatch), 2 = usage error.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "check/oracles.h"
#include "common/env.h"
#include "common/types.h"
#include "multiring/merge_learner.h"
#include "paxos/value.h"
#include "ringpaxos/config.h"
#include "ringpaxos/learner.h"
#include "ringpaxos/messages.h"
#include "ringpaxos/ring_node.h"
#include "tools/mc/explorer.h"
#include "tools/mc/mc_env.h"

namespace mrp::mc {
namespace {

// ---------------------------------------------------------------------
// World harness: McNet + OracleSuite + owned protocol roles + horizon.
// ---------------------------------------------------------------------

class McWorld final : public World {
 public:
  McWorld(Controller* controller, bool order_branching, Duration horizon)
      : net_(controller, order_branching), horizon_(kTimeZero + horizon) {}

  McNet& net() { return net_; }
  check::OracleSuite& oracles() { return oracles_; }

  void Host(NodeId id, std::unique_ptr<Protocol> proto,
            std::function<std::uint64_t()> fingerprint) {
    net_.AddRole(id, proto.get(), std::move(fingerprint));
    owned_.push_back(std::move(proto));
  }

  void Start() { net_.Start(); }

  bool Step() override {
    const TimePoint next = net_.NextEventTime(horizon_ + Duration{1});
    if (next > horizon_) return false;
    return net_.Step();
  }
  std::uint64_t Fingerprint() const override { return net_.Fingerprint(); }
  bool OracleOk() const override { return oracles_.ok(); }
  void Finish() override { oracles_.Finish(); }
  std::string FirstOracle() const override { return oracles_.first_oracle(); }
  std::uint64_t FeedDigest() const override { return oracles_.feed_digest(); }
  std::string OracleReport() const override { return oracles_.Report(); }

 private:
  McNet net_;
  check::OracleSuite oracles_;
  TimePoint horizon_;
  std::vector<std::unique_ptr<Protocol>> owned_;
};

// Deterministic client: submits a fixed list of (time, target, message)
// tuples. No rng, no jitter — the workload-generating
// ringpaxos::Proposer draws think-time jitter from env.rng(), whose
// cursor is not fingerprintable, so model-checked configs use this
// fixed-schedule client instead.
class McClient final : public Protocol {
 public:
  struct Sub {
    Duration at{0};
    NodeId to = kNoNode;
    RingId ring = 0;
    paxos::ClientMsg msg;
  };

  McClient(std::vector<Sub> subs, check::OracleSuite* oracles)
      : subs_(std::move(subs)), oracles_(oracles) {}

  void OnStart(Env& env) override {
    for (const auto& s : subs_) {
      if (s.at <= Duration{0}) {
        SendOne(env, s);
      } else {
        env.SetTimer(s.at, [this, &env, s] { SendOne(env, s); });
      }
    }
  }
  void OnMessage(Env&, NodeId, const MessagePtr&) override {}

  // Remaining schedule state lives in the net's timer fingerprint; the
  // proposed-set size is the client's only own state.
  std::uint64_t Fingerprint() const { return proposed_.size(); }

 private:
  void SendOne(Env& env, const Sub& s) {
    paxos::ClientMsg m = s.msg;
    m.sent_at = env.now();
    if (proposed_.insert({m.group, m.proposer, m.seq}).second) {
      oracles_->OnPropose(m);  // fresh submission, not a retransmit
    }
    env.Send(s.to, MakeMessage<ringpaxos::Submit>(s.ring, std::move(m)));
  }

  std::vector<Sub> subs_;
  check::OracleSuite* oracles_;
  std::set<std::tuple<GroupId, NodeId, std::uint64_t>> proposed_;
};

paxos::ClientMsg MakeCmd(GroupId group, NodeId proposer, std::uint64_t seq) {
  paxos::ClientMsg m;
  m.group = group;
  m.proposer = proposer;
  m.seq = seq;
  m.payload_size = 8;
  return m;
}

// Hosts one ring's acceptors and wires one RingLearner with oracle taps.
void HostRing(McWorld* world, const ringpaxos::RingConfig& cfg,
              const std::vector<NodeId>& learners) {
  McNet& net = world->net();
  for (NodeId n : cfg.ring_members) {
    net.AddNode(n);
    net.Subscribe(cfg.data_channel, n);
    net.Subscribe(cfg.control_channel, n);
    auto rn = std::make_unique<ringpaxos::RingNode>(cfg);
    auto* raw = rn.get();
    world->Host(n, std::move(rn), [raw] { return raw->Fingerprint(); });
  }
  check::OracleSuite* oracles = &world->oracles();
  for (NodeId ln : learners) {
    net.AddNode(ln);
    net.Subscribe(cfg.data_channel, ln);
    net.Subscribe(cfg.control_channel, ln);
    ringpaxos::RingLearner::Options lo;
    lo.learner.ring = cfg;
    lo.learner.recovery_interval = Seconds(10);  // past every horizon
    const int idx =
        oracles->RegisterLearner("L" + std::to_string(ln), {cfg.group});
    const GroupId group = cfg.group;
    lo.on_decide = [oracles, idx](RingId r, InstanceId i,
                                  const paxos::Value& v) {
      oracles->OnDecide(idx, r, i, v);
    };
    lo.on_deliver = [oracles, idx, group](const paxos::ClientMsg& m) {
      oracles->OnDeliver(idx, group, m);
    };
    auto rl = std::make_unique<ringpaxos::RingLearner>(std::move(lo));
    auto* raw = rl.get();
    world->Host(ln, std::move(rl), [raw] { return raw->Fingerprint(); });
  }
}

void HostClient(McWorld* world, NodeId id, std::vector<McClient::Sub> subs) {
  world->net().AddNode(id);
  auto cl = std::make_unique<McClient>(std::move(subs), &world->oracles());
  auto* raw = cl.get();
  world->Host(id, std::move(cl), [raw] { return raw->Fingerprint(); });
}

// Fail-over/retry timers pushed past the horizon: within the explored
// window the protocol is driven purely by message deliveries plus the
// batch/flush timers, which keeps the enabled sets small and the state
// space finite.
ringpaxos::RingConfig QuiescentRing(RingId ring, GroupId group,
                                    std::vector<NodeId> members,
                                    ChannelId data, ChannelId control) {
  ringpaxos::RingConfig cfg;
  cfg.ring = ring;
  cfg.group = group;
  cfg.ring_members = std::move(members);
  cfg.data_channel = data;
  cfg.control_channel = control;
  cfg.batch_bytes = 1;  // propose every submission immediately
  cfg.batch_timeout = Millis(1);
  cfg.window = 8;
  cfg.decision_flush = Millis(1);
  cfg.p2_retry = Seconds(10);
  cfg.heartbeat_interval = Seconds(10);
  cfg.suspect_after = Seconds(30);
  cfg.phase1_timeout = Seconds(10);
  cfg.delta = Seconds(10);
  return cfg;
}

// ---------------------------------------------------------------------
// Configurations.
// ---------------------------------------------------------------------

struct McConfig {
  std::string name;
  std::string summary;
  Explorer::Options opts;
  Explorer::WorldFactory factory;
};

McConfig Ring1Config() {
  McConfig c;
  c.name = "ring1";
  c.summary = "1 ring / 3 acceptors / 1 learner / 2 commands, exhaustive";
  c.opts.initial_depth = 256;   // deep enough for a single sweep
  c.opts.max_runs = 2000000;    // exhausts at ~700k runs
  c.factory = [](Controller* ctl) -> std::unique_ptr<World> {
    auto world =
        std::make_unique<McWorld>(ctl, /*order_branching=*/true, Millis(5));
    const ringpaxos::RingConfig cfg = QuiescentRing(0, 0, {1, 2, 3}, 1, 2);
    HostRing(world.get(), cfg, {10});
    HostClient(world.get(), 20,
               {{Duration{0}, 1, cfg.ring, MakeCmd(cfg.group, 20, 1)},
                {Duration{0}, 1, cfg.ring, MakeCmd(cfg.group, 20, 2)}});
    world->Start();
    return world;
  };
  return c;
}

McConfig Ring2Config() {
  McConfig c;
  c.name = "ring2";
  c.summary =
      "2 rings / merge learner / crash + duplicate branch points, bounded";
  c.opts.initial_depth = 16;
  c.opts.max_runs = 400;
  c.factory = [](Controller* ctl) -> std::unique_ptr<World> {
    auto world =
        std::make_unique<McWorld>(ctl, /*order_branching=*/true, Millis(5));
    McNet& net = world->net();
    const ringpaxos::RingConfig r0 = QuiescentRing(0, 0, {1, 2, 3}, 1, 2);
    const ringpaxos::RingConfig r1 = QuiescentRing(1, 1, {4, 5, 6}, 3, 4);
    HostRing(world.get(), r0, {});
    HostRing(world.get(), r1, {});

    // Multi-Ring merge learner over both groups.
    const NodeId ml = 10;
    net.AddNode(ml);
    for (ChannelId ch : {r0.data_channel, r0.control_channel, r1.data_channel,
                         r1.control_channel}) {
      net.Subscribe(ch, ml);
    }
    check::OracleSuite* oracles = &world->oracles();
    const int idx = oracles->RegisterLearner("ML", {r0.group, r1.group});
    multiring::MergeLearner::Options opts;
    for (const auto& rc : {r0, r1}) {
      ringpaxos::LearnerOptions lo;
      lo.ring = rc;
      lo.recovery_interval = Seconds(10);
      opts.groups.push_back(std::move(lo));
    }
    opts.m = 1;
    opts.tick_interval = Seconds(10);
    opts.on_decide = [oracles, idx](RingId r, InstanceId i,
                                    const paxos::Value& v) {
      oracles->OnDecide(idx, r, i, v);
    };
    opts.on_deliver = [oracles, idx](GroupId g, const paxos::ClientMsg& m) {
      oracles->OnDeliver(idx, g, m);
    };
    auto merge = std::make_unique<multiring::MergeLearner>(std::move(opts));
    auto* mraw = merge.get();
    world->Host(ml, std::move(merge), [mraw] { return mraw->Fingerprint(); });

    HostClient(world.get(), 20,
               {{Duration{0}, 1, r0.ring, MakeCmd(r0.group, 20, 1)}});
    HostClient(world.get(), 21,
               {{Duration{0}, 4, r1.ring, MakeCmd(r1.group, 21, 1)}});

    // Fault branch points (Kind::kPolicy): a crash/restart of ring 0's
    // tail acceptor and a duplicated Phase 2A.
    if (ctl->Choose(2, Controller::Kind::kPolicy, nullptr) == 1) {
      net.ScheduleCrash({3, kTimeZero + Millis(1), kTimeZero + Millis(3)});
    }
    if (ctl->Choose(2, Controller::Kind::kPolicy, nullptr) == 1) {
      net.AddPolicy({"ring.P2A", 1, 2, /*duplicate=*/true});
    }
    world->Start();
    return world;
  };
  return c;
}

// The historical CurrentLayoutAlive sub-majority bug (found by the chaos
// fuzzer, fixed in ring_node.cc, re-injected here behind
// RingConfig::test_unsafe_submajority_layout): a coordinator whose
// heartbeat acknowledgements are all lost declares every peer dead,
// rebuilds the ring as the sub-majority layout [self], and — without the
// fix's universe-majority padding and decision guards — decides alone.
// A later takeover by a real majority that never saw the value decides
// differently: agreement violation. The drop-policy branch points below
// are the search vocabulary; the all-off assignment is fault-free.
McConfig KnownBugConfig() {
  McConfig c;
  c.name = "known-bug";
  c.summary =
      "re-injected CurrentLayoutAlive sub-majority bug, drop-policy search";
  c.opts.initial_depth = 16;
  c.opts.max_runs = 2000;
  c.factory = [](Controller* ctl) -> std::unique_ptr<World> {
    auto world = std::make_unique<McWorld>(ctl, /*order_branching=*/false,
                                           Millis(300));
    McNet& net = world->net();
    ringpaxos::RingConfig cfg = QuiescentRing(0, 0, {1, 2, 3}, 1, 2);
    cfg.test_unsafe_submajority_layout = true;
    cfg.heartbeat_interval = Millis(20);
    cfg.suspect_after = Millis(60);
    cfg.phase1_timeout = Millis(50);
    cfg.p2_retry = Millis(25);
    cfg.decision_flush = Millis(5);
    cfg.delta = Millis(5);
    HostRing(world.get(), cfg, {10, 11});

    HostClient(world.get(), 20,
               {{Duration{0}, 1, cfg.ring, MakeCmd(cfg.group, 20, 1)}});
    std::vector<McClient::Sub> retrans;
    for (int k = 1; k <= 9; ++k) {
      retrans.push_back(
          {Millis(30 * k), 2, cfg.ring, MakeCmd(cfg.group, 21, 1)});
    }
    HostClient(world.get(), 21, std::move(retrans));

    const NodeId A = 1, B = 2, D = 3, L2 = 11;
    auto policy = [&](const char* type, NodeId from, NodeId to) {
      if (ctl->Choose(2, Controller::Kind::kPolicy, nullptr) == 1) {
        net.AddPolicy({type, from, to, /*duplicate=*/false});
      }
    };
    policy("ring.HeartbeatAck", kNoNode, A);
    policy("ring.Heartbeat", A, B);
    policy("ring.P2A", A, B);
    policy("ring.P2A", A, D);
    policy("ring.P2A", A, L2);
    policy("ring.Decision", A, L2);
    policy("ring.P1A", A, B);
    policy("ring.P1B", A, B);
    policy("ring.Decision", A, B);
    world->Start();
    return world;
  };
  return c;
}

std::optional<McConfig> FindConfig(const std::string& name) {
  if (name == "ring1") return Ring1Config();
  if (name == "ring2") return Ring2Config();
  if (name == "known-bug") return KnownBugConfig();
  return std::nullopt;
}

// ---------------------------------------------------------------------
// Replay artifact (mirrors the mrp_fuzz JSON artifact convention).
// ---------------------------------------------------------------------

struct McArtifact {
  std::string config;
  std::vector<std::size_t> choices;
  std::string violated_oracle;
  std::uint64_t feed_digest = 0;
};

std::string ToJson(const McArtifact& a) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"mrp_mc\",\n";
  out << "  \"config\": \"" << a.config << "\",\n";
  out << "  \"violated_oracle\": \"" << a.violated_oracle << "\",\n";
  char digest[32];
  std::snprintf(digest, sizeof digest, "%016" PRIx64, a.feed_digest);
  out << "  \"feed_digest\": \"" << digest << "\",\n";
  out << "  \"choices\": [";
  for (std::size_t i = 0; i < a.choices.size(); ++i) {
    if (i > 0) out << ", ";
    out << a.choices[i];
  }
  out << "]\n}\n";
  return out.str();
}

std::optional<std::string> JsonString(const std::string& json,
                                      const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const std::size_t at = json.find(pat);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t start = at + pat.size();
  const std::size_t end = json.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return json.substr(start, end - start);
}

std::optional<McArtifact> ParseArtifact(const std::string& json) {
  McArtifact a;
  auto config = JsonString(json, "config");
  auto oracle = JsonString(json, "violated_oracle");
  auto digest = JsonString(json, "feed_digest");
  if (!config || !oracle || !digest) return std::nullopt;
  a.config = *config;
  a.violated_oracle = *oracle;
  a.feed_digest = std::strtoull(digest->c_str(), nullptr, 16);
  const std::size_t at = json.find("\"choices\": [");
  if (at == std::string::npos) return std::nullopt;
  std::size_t pos = at + std::strlen("\"choices\": [");
  while (pos < json.size() && json[pos] != ']') {
    while (pos < json.size() && (json[pos] == ' ' || json[pos] == ','))
      ++pos;
    if (pos >= json.size() || json[pos] == ']') break;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(json.c_str() + pos, &end, 10);
    if (end == json.c_str() + pos) return std::nullopt;
    a.choices.push_back(static_cast<std::size_t>(v));
    pos = static_cast<std::size_t>(end - json.c_str());
  }
  return a;
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

void PrintStats(const McConfig& cfg, const char* mode,
                const ExploreStats& st) {
  std::printf(
      "mc %-9s %-6s status=%s runs=%" PRIu64 " transitions=%" PRIu64
      " states=%" PRIu64 " sleep_cuts=%" PRIu64 " visited_cuts=%" PRIu64
      " depth_cuts=%" PRIu64 " depth=%zu\n",
      cfg.name.c_str(), mode, st.StatusWord().c_str(), st.runs,
      st.transitions, st.distinct_states, st.sleep_cuts, st.visited_cuts,
      st.depth_cuts, st.final_depth_limit);
}

std::string ChoicesStr(const std::vector<std::size_t>& choices) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out << ",";
    out << choices[i];
  }
  out << "]";
  return out.str();
}

// Explores, and on violation shrinks + reports. Returns the artifact if
// a violation was found.
std::optional<McArtifact> ExploreAndReport(const McConfig& cfg,
                                           const Explorer::Options& opts) {
  Explorer ex(cfg.factory, opts);
  const ExploreStats st = ex.Explore();
  PrintStats(cfg, opts.sleep_sets ? "dpor" : "naive", st);
  if (!st.violation) return std::nullopt;
  std::printf("mc %-9s violation oracle=%s choices=%s\n", cfg.name.c_str(),
              st.violated_oracle.c_str(),
              ChoicesStr(st.violating_choices).c_str());
  const std::vector<std::size_t> shrunk =
      ex.Shrink(st.violating_choices, st.violated_oracle);
  const Explorer::RunResult rr = ex.Replay(shrunk);
  std::printf("mc %-9s shrunk   oracle=%s choices=%s (%zu -> %zu)\n",
              cfg.name.c_str(), rr.oracle.c_str(), ChoicesStr(shrunk).c_str(),
              st.violating_choices.size(), shrunk.size());
  std::printf("%s", rr.report.c_str());
  McArtifact a;
  a.config = cfg.name;
  a.choices = shrunk;
  a.violated_oracle = rr.oracle;
  a.feed_digest = rr.feed_digest;
  return a;
}

int ReplayFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "mrp_mc: cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto artifact = ParseArtifact(buf.str());
  if (!artifact) {
    std::fprintf(stderr, "mrp_mc: %s is not a valid artifact\n", path.c_str());
    return 2;
  }
  auto cfg = FindConfig(artifact->config);
  if (!cfg) {
    std::fprintf(stderr, "mrp_mc: unknown config %s\n",
                 artifact->config.c_str());
    return 2;
  }
  Explorer ex(cfg->factory, cfg->opts);
  const Explorer::RunResult rr = ex.Replay(artifact->choices);
  const bool match = rr.violated && rr.oracle == artifact->violated_oracle &&
                     rr.feed_digest == artifact->feed_digest;
  std::printf("replay %s: %s (oracle=%s digest_match=%s)\n",
              artifact->config.c_str(), match ? "confirmed" : "MISMATCH",
              rr.oracle.c_str(),
              rr.feed_digest == artifact->feed_digest ? "yes" : "no");
  return match ? 0 : 1;
}

// End-to-end pipeline validation: the known-bug config must yield a
// violation, shrink to a minimal choice vector, round-trip through the
// JSON artifact and replay byte-identically; ring1 must explore
// exhaustively with no violation. Mirrors mrp_fuzz --self-check.
int SelfCheck() {
  {
    const McConfig cfg = Ring1Config();
    Explorer ex(cfg.factory, cfg.opts);
    const ExploreStats st = ex.Explore();
    PrintStats(cfg, "dpor", st);
    if (!st.exhausted || st.violation) {
      std::printf("self-check: FAIL (ring1 not exhaustively clean)\n");
      return 1;
    }
  }
  const McConfig cfg = KnownBugConfig();
  const auto artifact = ExploreAndReport(cfg, cfg.opts);
  if (!artifact || artifact->violated_oracle != "agreement") {
    std::printf("self-check: FAIL (known-bug violation not found)\n");
    return 1;
  }
  const std::string json = ToJson(*artifact);
  const auto parsed = ParseArtifact(json);
  if (!parsed || parsed->choices != artifact->choices ||
      parsed->feed_digest != artifact->feed_digest ||
      parsed->violated_oracle != artifact->violated_oracle) {
    std::printf("self-check: FAIL (artifact does not round-trip)\n");
    return 1;
  }
  Explorer ex(cfg.factory, cfg.opts);
  const Explorer::RunResult rr = ex.Replay(parsed->choices);
  if (!rr.violated || rr.oracle != parsed->violated_oracle ||
      rr.feed_digest != parsed->feed_digest) {
    std::printf("self-check: FAIL (replay diverged)\n");
    return 1;
  }
  std::printf("self-check: OK (violation found, shrunk to %zu choices, "
              "artifact replayed identically)\n",
              parsed->choices.size());
  return 0;
}

int Main(int argc, char** argv) {
  std::string config_name = "ring1";
  std::string artifact_path;
  std::string replay_path;
  bool naive = false;
  bool compare = false;
  bool self_check = false;
  std::uint64_t max_runs = 0;
  std::size_t depth = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mrp_mc: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_name = next();
    } else if (arg == "--naive") {
      naive = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--max-runs") {
      max_runs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--depth") {
      depth = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--artifact") {
      artifact_path = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--self-check") {
      self_check = true;
    } else {
      std::fprintf(stderr,
                   "usage: mrp_mc [--config ring1|ring2|known-bug] [--naive] "
                   "[--compare] [--max-runs N] [--depth N] [--artifact FILE] "
                   "[--replay FILE] [--self-check]\n");
      return 2;
    }
  }

  if (!replay_path.empty()) return ReplayFile(replay_path);
  if (self_check) return SelfCheck();

  auto cfg = FindConfig(config_name);
  if (!cfg) {
    std::fprintf(stderr, "mrp_mc: unknown config %s\n", config_name.c_str());
    return 2;
  }
  Explorer::Options opts = cfg->opts;
  if (max_runs > 0) opts.max_runs = max_runs;
  if (depth > 0) opts.initial_depth = depth;
  if (naive) {
    opts.sleep_sets = false;
    opts.visited = false;
  }

  if (compare) {
    // Partial-order-reduction effectiveness: the naive enumeration gets
    // 5x the DPOR run budget; exceeding it proves the >= 5x ratio.
    Explorer dpor(cfg->factory, opts);
    const ExploreStats ds = dpor.Explore();
    PrintStats(*cfg, "dpor", ds);
    Explorer::Options nopts = opts;
    nopts.sleep_sets = false;
    nopts.visited = false;
    nopts.max_runs = ds.runs * 5 + 1;
    Explorer nv(cfg->factory, nopts);
    const ExploreStats ns = nv.Explore();
    PrintStats(*cfg, "naive", ns);
    if (ns.budget_exhausted) {
      std::printf("mc %-9s reduction>=5.0x (naive exceeded %" PRIu64
                  " runs; dpor=%" PRIu64 ")\n",
                  cfg->name.c_str(), nopts.max_runs, ds.runs);
    } else {
      std::printf("mc %-9s reduction=%.1fx (naive=%" PRIu64 " dpor=%" PRIu64
                  ")\n",
                  cfg->name.c_str(),
                  ds.runs > 0 ? static_cast<double>(ns.runs) /
                                    static_cast<double>(ds.runs)
                              : 0.0,
                  ns.runs, ds.runs);
    }
    return ds.violation || ns.violation ? 1 : 0;
  }

  const auto artifact = ExploreAndReport(*cfg, opts);
  if (artifact && !artifact_path.empty()) {
    std::ofstream out(artifact_path);
    out << ToJson(*artifact);
    std::printf("mc %-9s artifact=%s\n", cfg->name.c_str(),
                artifact_path.c_str());
  }
  return artifact ? 1 : 0;
}

}  // namespace
}  // namespace mrp::mc

int main(int argc, char** argv) { return mrp::mc::Main(argc, argv); }
