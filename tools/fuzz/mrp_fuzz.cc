// Deterministic chaos fuzzer for Multi-Ring Paxos (docs/CHECKING.md).
//
// Each seed draws a timed fault schedule (src/check/fault_plan.h),
// executes it against a full simulated deployment with the protocol
// invariant oracles (src/check/oracles.h) tapped into every role, and —
// on a violation — greedily shrinks the schedule and writes a
// self-contained JSON replay artifact that `--replay` reproduces
// byte-identically (the oracle feed digest must match).
//
// Modes:
//   mrp_fuzz --seeds N [--start-seed S] [--budget majority|anything]
//            [--rings R --ring-size K --spares P --sites S --smr]
//            [--artifact-dir DIR]        sweep seeds, exit 1 on violation
//   mrp_fuzz --replay FILE              re-run an artifact, verify digest
//   mrp_fuzz --self-check               inject an agreement bug, verify
//                                       the oracles catch it, the shrinker
//                                       reduces it, and replay is exact
//   mrp_fuzz --codec-fuzz N             mutate encoded frames through
//                                       net::DecodeMessage (crash = bug)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/fault_plan.h"
#include "check/oracles.h"
#include "check/reconfig_oracle.h"
#include "check/recovery_oracle.h"
#include "check/session_oracle.h"
#include "common/rand.h"
#include "common/trace.h"
#include "common/types.h"
#include "multiring/merge_learner.h"
#include "multiring/sim_deployment.h"
#include "net/codec.h"
#include "paxos/messages.h"
#include "reconfig/repartition.h"
#include "recovery/sim_harness.h"
#include "ringpaxos/proposer.h"
#include "ringpaxos/ring_node.h"
#include "session/admission.h"
#include "session/client.h"
#include "session/lease.h"
#include "session/messages.h"
#include "sim/topology.h"
#include "smr/client.h"
#include "smr/replica.h"

namespace mrp {
namespace {

using check::DeploymentShape;
using check::FaultBudget;
using check::FaultEvent;
using check::FaultPlan;
using check::OracleSuite;
using check::ReplayArtifact;
using multiring::DeploymentOptions;
using multiring::MergeLearner;
using multiring::SimDeployment;

// Ambient loss every run starts from; loss bursts raise it temporarily.
constexpr double kBaseLoss = 0.01;
// Settle time after the last fault heals before Finish() runs.
constexpr Duration kQuiesce = Seconds(3);
// Liveness floor under the majority-preserving budget: distinct client
// messages the acking learner must have delivered by the end.
constexpr std::size_t kMinProgress = 100;

// --probe ring:instance — dump every learner's decide of one instance
// to stderr (diagnosing an agreement violation from a replay artifact).
struct Probe {
  bool active = false;
  RingId ring = 0;
  InstanceId instance = 0;
};
Probe g_probe;

void MaybeProbe(const std::string& learner, RingId ring, InstanceId inst,
                const paxos::Value& v) {
  if (!g_probe.active || ring != g_probe.ring || inst != g_probe.instance) {
    return;
  }
  std::fprintf(stderr, "probe: %s ring=%u inst=%llu kind=%s skips=%llu msgs=",
               learner.c_str(), ring, static_cast<unsigned long long>(inst),
               v.is_skip() ? "skip" : "batch",
               static_cast<unsigned long long>(v.skip_count));
  for (const auto& m : v.msgs) {
    std::fprintf(stderr, "(g%u p%u s%llu)", m.group, m.proposer,
                 static_cast<unsigned long long>(m.seq));
  }
  std::fprintf(stderr, "\n");
}

struct RunStats {
  bool violated = false;
  std::string first_oracle;
  std::vector<check::Violation> violations;
  std::uint64_t digest = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t session_applies = 0;  // dedup-passing applies (with_smr)
  std::uint64_t local_reads = 0;      // lease-served local reads (with_smr)
  std::uint64_t reconfig_applies = 0;  // stamped applies the split oracle saw
  bool repart_done = false;            // the live split ran to completion
  std::string report;

  bool Has(const std::string& oracle) const {
    for (const auto& v : violations) {
      if (v.oracle == oracle) return true;
    }
    return false;
  }
};

sim::SimNode* ResolveCoordinator(SimDeployment& d, int ring) {
  for (auto* n : d.ring_universe(ring)) {
    if (n->down()) continue;
    auto* rn = n->protocol_as<ringpaxos::RingNode>();
    if (rn != nullptr && rn->is_coordinator()) return n;
  }
  // Mid-election: fall back to the initial coordinator.
  return d.coordinator_node(ring);
}

// Executes one plan against a fresh deployment and returns what the
// oracles saw. Fully deterministic in (plan, inject_corrupt).
RunStats RunPlan(const FaultPlan& plan, InstanceId inject_corrupt,
                 bool verbose) {
  // With --trace, each run starts from an empty buffer so the exported
  // JSONL covers exactly the final run.
  if (Tracer::Instance().enabled()) Tracer::Instance().Clear();
  const DeploymentShape& shape = plan.shape;

  DeploymentOptions opts;
  opts.n_rings = shape.n_rings;
  opts.ring_size = shape.ring_size;
  opts.n_spares = shape.n_spares;
  opts.disk = true;  // recoverable acceptors; enables disk-stall faults
  // Safety-tied trimming: acceptors only trim below the coordinator's
  // stable checkpoint frontier (exercises the recovery subsystem's
  // retention guarantee on every fuzz run).
  opts.frontier_gated_trim = true;
  opts.net.seed = plan.seed;
  opts.net.loss_probability = kBaseLoss;
  opts.lambda_per_sec = 4000;
  opts.suspect_after = Millis(50);
  if (shape.n_sites > 1) {
    std::vector<std::string> names;
    for (int s = 0; s < shape.n_sites; ++s) {
      names.push_back("site" + std::to_string(s));
    }
    sim::LinkSpec link;
    link.latency = Millis(2);
    link.jitter = Micros(200);
    opts.net.topology = sim::Topology::FullMesh(names, link);
    for (int r = 0; r < shape.n_rings; ++r) {
      opts.ring_sites.push_back(static_cast<sim::SiteId>(r % shape.n_sites));
    }
  }

  SimDeployment d(opts);
  OracleSuite oracle(&d.net().metrics());

  // Three learner vantage points: two subscribed to everything (one
  // acking — it closes the proposers' loops), one to ring 0 only. The
  // second all-rings learner carries the --self-check corruption hook.
  std::vector<int> all_rings;
  for (int r = 0; r < shape.n_rings; ++r) all_rings.push_back(r);
  std::set<std::pair<NodeId, std::uint64_t>> delivered_by_a;

  // Reconfiguration infra (docs/RECONFIG.md) is built only when the plan
  // carries reconfig events, so earlier artifacts replay byte-identically.
  bool has_reconfig_events = false;
  bool has_split = false;
  TimePoint split_at{0};
  for (const FaultEvent& ev : plan.events) {
    if (ev.kind >= FaultEvent::Kind::kSplitLive) has_reconfig_events = true;
    if (ev.kind == FaultEvent::Kind::kSplitLive && !has_split) {
      has_split = true;
      split_at = ev.at;
    }
  }
  const bool reconfig_on =
      has_reconfig_events && shape.with_smr && shape.n_rings >= 2;
  check::ReconfigOracle reconfig_oracle(&oracle);
  reconfig::RingHolder client_holder;  // the KV client's routing view
  constexpr std::uint64_t kSplitPlanId = 77;
  constexpr std::uint64_t kSplitLo = 500000;
  constexpr std::uint64_t kKeyMax = 999999;  // Partitioning space - 1

  auto add_learner = [&](const std::string& name,
                         const std::vector<int>& rings, bool acks,
                         InstanceId corrupt) -> MergeLearner* {
    auto& node = d.net().AddNode();
    std::vector<GroupId> groups;
    MergeLearner::Options mo;
    mo.send_delivery_acks = acks;
    for (int r : rings) {
      ringpaxos::LearnerOptions lo;
      lo.ring = d.ring(r);
      if (corrupt != 0 && r == rings.front()) {
        lo.test_corrupt_instance = corrupt;
      }
      groups.push_back(d.ring(r).group);
      mo.groups.push_back(lo);
      d.net().Subscribe(node.self(), d.ring(r).data_channel);
      d.net().Subscribe(node.self(), d.ring(r).control_channel);
    }
    const int idx = oracle.RegisterLearner(name, groups);
    // Merge-order pin for the split oracle: fully subscribed learners'
    // per-group delivery sequences must stay prefix-consistent across
    // the reconfiguration.
    const int rl = reconfig_on ? reconfig_oracle.RegisterLearner(name) : -1;
    mo.on_decide = [&oracle, idx, name](RingId ring, InstanceId inst,
                                        const paxos::Value& v) {
      MaybeProbe(name, ring, inst, v);
      oracle.OnDecide(idx, ring, inst, v);
    };
    mo.on_deliver = [&oracle, &reconfig_oracle, &delivered_by_a, idx, rl,
                     acks](GroupId g, const paxos::ClientMsg& m) {
      oracle.OnDeliver(idx, g, m);
      if (acks) delivered_by_a.emplace(m.proposer, m.seq);
      if (rl >= 0) reconfig_oracle.OnDeliver(rl, g, m.Fingerprint());
    };
    auto learner = std::make_unique<MergeLearner>(std::move(mo));
    MergeLearner* raw = learner.get();
    node.BindProtocol(std::move(learner));
    return raw;
  };
  MergeLearner* merge_a = add_learner("merge-a", all_rings, /*acks=*/true, 0);
  add_learner("merge-b", all_rings, /*acks=*/false, inject_corrupt);
  add_learner("ring0-only", {0}, /*acks=*/false, 0);
  if (reconfig_on) {
    // A split never reorders the ring streams themselves (the seal is
    // just a command in the source stream), so every group's merge order
    // is pinned across the move.
    for (int r : all_rings) reconfig_oracle.MarkUnaffected(d.ring(r).group);
  }

  // Two recovery-enabled learners (docs/RECOVERY.md): rec-a is the
  // never-crashed reference (and snapshot server), rec-b the crash
  // target of kLearnerCrash faults. Their checkpoints drive the
  // coordinator's stable frontier, which gates all acceptor trimming.
  check::RecoveryOracle recovery_oracle(&oracle);
  auto& coord_node = d.net().AddNode();
  // HashApps outlive crash-replaced protocol objects; revives push a
  // fresh one (state loss) that the restore repopulates.
  std::vector<std::unique_ptr<recovery::HashApp>> apps;
  const int rec_a_idx = oracle.RegisterLearner(
      "rec-a", std::vector<GroupId>(all_rings.begin(), all_rings.end()));
  recovery::RecoverableLearner::Options ra;
  ra.coordinator = coord_node.self();
  apps.push_back(std::make_unique<recovery::HashApp>());
  recovery::HashApp* app_a = apps.back().get();
  ra.app = app_a;
  ra.merge.on_decide = [&oracle, rec_a_idx](RingId ring, InstanceId inst,
                                            const paxos::Value& v) {
    MaybeProbe("rec-a", ring, inst, v);
    oracle.OnDecide(rec_a_idx, ring, inst, v);
  };
  ra.merge.on_deliver = [&oracle, &recovery_oracle, rec_a_idx,
                         app_a](GroupId g, const paxos::ClientMsg& m) {
    oracle.OnDeliver(rec_a_idx, g, m);
    recovery_oracle.OnReferenceDeliver(g, m);
    app_a->Apply(g, m);
  };
  auto rec_a = recovery::AddRecoverableLearner(d, all_rings, std::move(ra));

  auto make_rec_b_opts = [&]() {
    recovery::RecoverableLearner::Options rb;
    rb.coordinator = coord_node.self();
    rb.fetch.peers = {rec_a.node->self()};
    apps.push_back(std::make_unique<recovery::HashApp>());
    auto* app = apps.back().get();
    rb.app = app;
    rb.merge.on_deliver = [&recovery_oracle, app](GroupId g,
                                                  const paxos::ClientMsg& m) {
      recovery_oracle.OnRecoveredDeliver(g, m);
      app->Apply(g, m);
    };
    rb.on_restore = [&recovery_oracle](std::uint64_t resume_index,
                                       const recovery::Checkpoint&) {
      recovery_oracle.BeginRecovered(resume_index);
    };
    return rb;
  };
  auto rec_b = recovery::AddRecoverableLearner(d, all_rings, make_rec_b_opts());

  recovery::BindCheckpointCoordinator(
      d, coord_node, {rec_a.node->self(), rec_b.node->self()}, Millis(200));

  // Two closed-loop proposers per ring.
  std::vector<ringpaxos::Proposer*> props;
  for (int r = 0; r < shape.n_rings; ++r) {
    for (int c = 0; c < 2; ++c) {
      ringpaxos::ProposerConfig pc;
      pc.max_outstanding = 6;
      pc.payload_size = 512;
      pc.retry_timeout = Millis(150);
      pc.on_submit = [&oracle](const paxos::ClientMsg& m) {
        oracle.OnPropose(m);
      };
      props.push_back(d.AddProposer(r, pc));
    }
  }

  // Optional KV service on partition 0 (ring 0): two session-enabled
  // replicas whose apply streams feed the SMR prefix-consistency oracle
  // (and whose session taps feed the SessionOracle), one closed-loop KV
  // client, plus the session control plane (docs/SESSIONS.md): an
  // admission gateway fronting ring 0's coordinator, a lease grantor
  // with replica1 as the configured lease holder, and a session client
  // whose reads go to replica1 first.
  check::SessionOracle session_oracle(&oracle);
  std::vector<smr::Replica*> replicas;
  std::vector<sim::SimNode*> replica_nodes;
  smr::KvClient* kv_client = nullptr;
  sim::SimNode* kv_client_node = nullptr;
  MergeLearner* observer = nullptr;  // resubscribe-storm target
  sim::SimNode* reconfig_target_node = nullptr;
  reconfig::RepartitionCoordinator* repart = nullptr;
  sim::SimNode* repart_node = nullptr;
  session::SessionClient* session_client = nullptr;
  sim::SimNode* session_client_node = nullptr;
  session::LeaseGrantor* lease_grantor = nullptr;
  sim::SimNode* lease_grantor_node = nullptr;
  if (shape.with_smr) {
    for (int r = 0; r < 2; ++r) {
      auto& node = d.net().AddNode();
      smr::ReplicaConfig rc;
      rc.partition = 0;
      rc.partition_ring.ring = d.ring(0);
      rc.respond = (r == 0);
      rc.sessions = true;
      rc.serve_local_reads = (r == 1);  // replica1 is the lease holder
      const int idx =
          oracle.RegisterReplica("replica" + std::to_string(r), 0);
      rc.on_apply = [&oracle, idx](const smr::Command& cmd) {
        oracle.OnSmrApply(idx, cmd);
      };
      const int sidx =
          session_oracle.RegisterReplica("replica" + std::to_string(r));
      const int ridx = reconfig_on
                           ? reconfig_oracle.RegisterReplica(
                                 "replica" + std::to_string(r),
                                 d.ring(0).group)
                           : -1;
      rc.on_session_apply = [&session_oracle, &reconfig_oracle, sidx, ridx](
                                std::uint64_t sid, std::uint64_t seq) {
        session_oracle.OnSessionApply(sidx, sid, seq);
        if (ridx >= 0) reconfig_oracle.OnSessionApply(ridx, sid, seq);
      };
      if (r == 1) {
        rc.on_local_read = [&session_oracle, sidx](std::uint64_t epoch,
                                                   bool lease_valid,
                                                   InstanceId grant_point,
                                                   InstanceId frontier) {
          session_oracle.OnLocalRead(sidx, epoch, lease_valid, grant_point,
                                     frontier);
        };
      }
      auto rep = std::make_unique<smr::Replica>(rc);
      replicas.push_back(rep.get());
      replica_nodes.push_back(&node);
      node.BindProtocol(std::move(rep));
      d.net().Subscribe(node.self(), d.ring(0).data_channel);
      d.net().Subscribe(node.self(), d.ring(0).control_channel);
    }
    {
      sim::NodeSpec spec;
      spec.infinite_cpu = true;
      auto& node = d.net().AddNode(spec);
      smr::KvClientConfig cc;
      cc.rings.push_back(d.ring(0));
      cc.window = 2;
      cc.on_submit = [&oracle](const paxos::ClientMsg& m) {
        oracle.OnPropose(m);
      };
      if (reconfig_on) {
        // Holder-routed, session-stamped traffic: redirects re-dispatch
        // across the split and the oracle pins exactly-once + no-loss.
        cc.holder = &client_holder;
        cc.session_id = 3;
        cc.on_complete = [&reconfig_oracle](std::uint64_t sid,
                                            std::uint64_t seq) {
          reconfig_oracle.OnClientComplete(sid, seq);
        };
      }
      auto client = std::make_unique<smr::KvClient>(cc);
      kv_client = client.get();
      kv_client_node = &node;
      node.BindProtocol(std::move(client));
    }
    // Admission gateway: the session client's submissions funnel through
    // it; retry storms overflow the token bucket and exercise the
    // queue/shed/Rejected path without starving steady-state traffic.
    NodeId gateway_id = kNoNode;
    {
      auto& node = d.net().AddNode();
      session::GatewayConfig gc;
      gc.ring = d.ring(0).ring;
      gc.coordinator = d.ring(0).ring_members[0];
      gc.rate_per_sec = 3000;
      gc.burst = 64;
      gc.max_queue = 64;
      node.BindProtocol(std::make_unique<session::Gateway>(gc));
      gateway_id = node.self();
    }
    {
      auto& node = d.net().AddNode();
      session::LeaseGrantorConfig lc;
      lc.ring = d.ring(0).ring;
      lc.group = d.ring(0).group;
      lc.holder = replica_nodes[1]->self();
      auto lg = std::make_unique<session::LeaseGrantor>(lc);
      lease_grantor = lg.get();
      lease_grantor_node = &node;
      node.BindProtocol(std::move(lg));
      d.net().Subscribe(node.self(), d.ring(0).data_channel);
      d.net().Subscribe(node.self(), d.ring(0).control_channel);
    }
    {
      sim::NodeSpec spec;
      spec.infinite_cpu = true;
      auto& node = d.net().AddNode(spec);
      session::SessionClientConfig sc;
      sc.session_id = 1;
      sc.ring = d.ring(0);
      sc.partition = 0;
      sc.gateway = gateway_id;
      sc.read_replica = replica_nodes[1]->self();
      sc.window = 4;
      sc.on_submit = [&oracle](const paxos::ClientMsg& m) {
        oracle.OnPropose(m);
      };
      auto cl = std::make_unique<session::SessionClient>(sc);
      session_client = cl.get();
      session_client_node = &node;
      node.BindProtocol(std::move(cl));
    }
    if (reconfig_on) {
      auto route_of = [&d](int r) {
        reconfig::GroupRoute gr;
        gr.group = d.ring(r).group;
        gr.ring = d.ring(r).ring;
        gr.coordinator = d.ring(r).ring_members[0];
        gr.data_channel = d.ring(r).data_channel;
        gr.control_channel = d.ring(r).control_channel;
        gr.ring_members = d.ring(r).ring_members;
        return gr;
      };
      // Group 0 owns the whole key space until the split moves the
      // upper half to ring 1's group.
      client_holder.Install(reconfig::RingConfiguration(
          1, {route_of(0)}, {{0, kKeyMax, d.ring(0).group}}));

      // Target-partition replica: bootstraps from the sealed handoff
      // (chunked snapshot transfer from either source replica) and
      // answers the coordinator's completion probes.
      {
        auto& node = d.net().AddNode();
        smr::ReplicaConfig rc;
        rc.partition = d.ring(1).group;
        rc.range = {kSplitLo, kKeyMax};
        rc.partition_ring.ring = d.ring(1);
        rc.respond = true;
        rc.sessions = true;
        rc.handoff_plan = kSplitPlanId;
        rc.handoff_peers = {replica_nodes[0]->self(),
                            replica_nodes[1]->self()};
        const int idx = oracle.RegisterReplica("target", 1);
        rc.on_apply = [&oracle, idx](const smr::Command& cmd) {
          oracle.OnSmrApply(idx, cmd);
        };
        const int sidx = session_oracle.RegisterReplica("target");
        const int ridx =
            reconfig_oracle.RegisterReplica("target", d.ring(1).group);
        rc.on_session_apply = [&session_oracle, &reconfig_oracle, sidx,
                               ridx](std::uint64_t sid, std::uint64_t seq) {
          session_oracle.OnSessionApply(sidx, sid, seq);
          reconfig_oracle.OnSessionApply(ridx, sid, seq);
        };
        auto rep = std::make_unique<smr::Replica>(rc);
        reconfig_target_node = &node;
        node.BindProtocol(std::move(rep));
        d.net().Subscribe(node.self(), d.ring(1).data_channel);
        d.net().Subscribe(node.self(), d.ring(1).control_channel);
      }

      // Observer merge learner: the resubscribe-storm target. Its
      // subscribe cuts and decides feed the early-delivery oracle; it
      // is deliberately NOT merge-order pinned (unsubscribed stretches
      // leave legitimate gaps in its streams).
      {
        auto& node = d.net().AddNode();
        MergeLearner::Options mo;
        std::map<GroupId, RingId> ring_of;
        for (int r : all_rings) {
          ringpaxos::LearnerOptions lo;
          lo.ring = d.ring(r);
          mo.groups.push_back(lo);
          ring_of[d.ring(r).group] = d.ring(r).ring;
          d.net().Subscribe(node.self(), d.ring(r).data_channel);
          d.net().Subscribe(node.self(), d.ring(r).control_channel);
        }
        const int obs = reconfig_oracle.RegisterLearner("observer");
        mo.on_decide = [&reconfig_oracle, obs](RingId ring, InstanceId inst,
                                               const paxos::Value&) {
          reconfig_oracle.OnDecide(obs, ring, inst);
        };
        mo.on_subscription_change =
            [&reconfig_oracle, obs, ring_of](GroupId g, bool joined,
                                             InstanceId cut) {
              if (!joined) return;
              auto it = ring_of.find(g);
              if (it != ring_of.end()) {
                reconfig_oracle.OnSubscribeCut(obs, it->second, cut);
              }
            };
        auto ml = std::make_unique<MergeLearner>(std::move(mo));
        observer = ml.get();
        node.BindProtocol(std::move(ml));
      }

      // The repartition coordinator, armed to begin at the split
      // event's time. Routing flips reach the KV client as
      // RoutingUpdate messages (the wire path, not a shared holder).
      if (has_split) {
        auto& node = d.net().AddNode();
        reconfig::RepartitionConfig pc;
        pc.plan = reconfig::ReconfigPlan::Split(
            kSplitPlanId, d.ring(0).group, d.ring(1).group, kSplitLo,
            kKeyMax, d.ring(1).ring);
        pc.source_ring = d.ring(0);
        pc.next = reconfig::RingConfiguration(
            2, {route_of(0), route_of(1)},
            {{0, kSplitLo - 1, d.ring(0).group},
             {kSplitLo, kKeyMax, d.ring(1).group}});
        pc.target_replica = reconfig_target_node->self();
        pc.notify = {kv_client_node->self()};
        pc.start_delay = Duration(split_at.count());
        pc.on_submit = [&oracle](const paxos::ClientMsg& m) {
          oracle.OnPropose(m);
        };
        auto co = std::make_unique<reconfig::RepartitionCoordinator>(pc);
        repart = co.get();
        repart_node = &node;
        node.BindProtocol(std::move(co));
      }
    }
  }

  d.Start();

  // ---- Execute the schedule ----
  // Loss bursts stack: the effective probability is the strongest
  // active burst (never below ambient). Heals run as scheduler events.
  std::multiset<double> active_loss;
  auto apply_loss = [&] {
    const double burst = active_loss.empty() ? 0.0 : *active_loss.rbegin();
    d.net().SetLossProbability(std::max(kBaseLoss, burst));
  };
  auto& sched = d.net().scheduler();
  TimePoint last_end{0};
  for (const FaultEvent& ev : plan.events) {
    d.net().RunUntil(ev.at);
    const TimePoint heal_at = ev.at + ev.duration;
    last_end = std::max(last_end, heal_at);
    if (verbose) {
      std::fprintf(stderr, "  [%8.3fs] %s ring=%d member=%d dur=%.3fs\n",
                   static_cast<double>(ev.at.count()) * 1e-9,
                   check::KindName(ev.kind), ev.ring, ev.member,
                   static_cast<double>(ev.duration.count()) * 1e-9);
    }
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash: {
        auto* node = d.acceptor_node(ev.ring, ev.member);
        node->SetDown(true);
        sched.At(heal_at, [node] { node->SetDown(false); });
        break;
      }
      case FaultEvent::Kind::kCoordKill: {
        auto* node = ResolveCoordinator(d, ev.ring);
        node->SetDown(true);
        sched.At(heal_at, [node] { node->SetDown(false); });
        break;
      }
      case FaultEvent::Kind::kLossBurst: {
        const double loss = ev.loss;
        active_loss.insert(loss);
        apply_loss();
        // Erase by value: the end-of-run heal-all clears the set, and a
        // straggling heal event firing after that must be a no-op.
        sched.At(heal_at, [&active_loss, &apply_loss, loss] {
          auto it = active_loss.find(loss);
          if (it != active_loss.end()) active_loss.erase(it);
          apply_loss();
        });
        break;
      }
      case FaultEvent::Kind::kDiskStall: {
        auto* disk = d.disk_storage(ev.ring, ev.member);
        if (disk != nullptr) disk->StallUntil(d.net().now() + ev.duration);
        break;
      }
      case FaultEvent::Kind::kPartition: {
        const auto a = static_cast<sim::SiteId>(ev.site_a);
        const auto b = static_cast<sim::SiteId>(ev.site_b);
        d.net().SetLinkUp(a, b, false);
        sched.At(heal_at, [&d, a, b] { d.net().SetLinkUp(a, b, true); });
        break;
      }
      case FaultEvent::Kind::kLearnerCrash: {
        // Crash-with-state-loss of the recovery target: at heal time a
        // FRESH protocol object bootstraps from rec-a's snapshot. The
        // replace happens while still down (clears timers without
        // running OnStart), then the node resumes and starts.
        rec_b.node->SetDown(true);
        sched.At(heal_at, [&d, &rec_b, &make_rec_b_opts, &all_rings] {
          if (!rec_b.node->down()) return;  // overlapping crash healed us
          recovery::ReviveRecoverableLearner(d, rec_b, all_rings,
                                             make_rec_b_opts());
          rec_b.node->SetDown(false);
          rec_b.node->Start();
        });
        break;
      }
      // Client-side session events: no-ops unless the shape runs SMR
      // (the generator and parser only emit them for with_smr shapes).
      case FaultEvent::Kind::kDuplicateSubmit: {
        if (session_client != nullptr) {
          session_client->TriggerDuplicate(*session_client_node);
        }
        break;
      }
      case FaultEvent::Kind::kRetryStorm: {
        if (session_client != nullptr) {
          session_client->TriggerRetryStorm(*session_client_node);
        }
        break;
      }
      case FaultEvent::Kind::kSessionAbandon: {
        if (session_client != nullptr) {
          session_client->TriggerAbandon(*session_client_node);
        }
        break;
      }
      case FaultEvent::Kind::kLeaseDrop: {
        // Pause the grantor so leases expire and reads fall back to the
        // ring; Resume re-grants under a fresh epoch at heal time.
        if (lease_grantor != nullptr) {
          lease_grantor->Pause();
          auto* lg = lease_grantor;
          auto* ln = lease_grantor_node;
          sched.At(heal_at, [lg, ln] { lg->Resume(*ln); });
        }
        break;
      }
      case FaultEvent::Kind::kSplitLive: {
        // The repartition coordinator was armed at setup with this
        // event's time as its start delay; nothing to trigger here.
        break;
      }
      case FaultEvent::Kind::kResubscribeStorm: {
        // Unsubscribe the last ring's group now; at heal time, rejoin
        // positioned at the reference learner's frontier (the
        // snapshot-cut bootstrap of a live join). Both changes activate
        // at merge turn boundaries.
        if (observer != nullptr) {
          const int r = shape.n_rings - 1;
          const GroupId g = d.ring(r).group;
          observer->QueueUnsubscribe(g);
          MergeLearner* obs = observer;
          MergeLearner* ref = merge_a;
          sched.At(heal_at, [obs, ref, &d, r, g] {
            InstanceId cut = 1;
            for (std::size_t i = 0; i < ref->group_count(); ++i) {
              if (ref->group_source(i)->group() == g) {
                cut = ref->group_source(i)->next_instance();
              }
            }
            ringpaxos::LearnerOptions lo;
            lo.ring = d.ring(r);
            auto src = std::make_unique<multiring::RingGroupSource>(lo);
            src->StartAt(cut);
            obs->QueueSubscribe(std::move(src));
          });
        }
        break;
      }
      case FaultEvent::Kind::kReconfigCoordKill: {
        // Pause the repartition coordinator mid-plan; its deferred tick
        // resumes the idempotent state machine at heal time.
        if (repart_node != nullptr) {
          repart_node->SetDown(true);
          auto* n = repart_node;
          sched.At(heal_at, [n] { n->SetDown(false); });
        }
        break;
      }
    }
  }
  d.net().RunUntil(std::max(plan.budget.horizon, last_end));

  // Heal everything and quiesce so liveness can be asserted and the
  // cross-learner oracles see settled logs.
  for (int r = 0; r < shape.n_rings; ++r) {
    for (auto* n : d.ring_universe(r)) n->SetDown(false);
  }
  active_loss.clear();
  apply_loss();
  for (int a = 0; a < shape.n_sites; ++a) {
    for (int b = a + 1; b < shape.n_sites; ++b) {
      d.net().SetLinkUp(static_cast<sim::SiteId>(a),
                        static_cast<sim::SiteId>(b), true);
    }
  }
  d.RunFor(kQuiesce);

  oracle.Finish();
  // Restored-stream comparison: every crash-recovered segment of rec-b
  // must be byte-identical to rec-a's stream from its resume index.
  recovery_oracle.Finish();
  // Split no-loss check: every stamped write the client saw complete
  // must have been applied by some replica (no-op without reconfig).
  reconfig_oracle.Finish();

  if (plan.budget.assert_liveness) {
    if (delivered_by_a.size() < kMinProgress) {
      oracle.Flag("liveness",
                  "acking learner delivered " +
                      std::to_string(delivered_by_a.size()) + " < " +
                      std::to_string(kMinProgress) + " messages");
    }
    // Validity: every acknowledged submission was delivered (or is
    // still tracked as outstanding after the final retransmit).
    for (std::size_t p = 0; p < props.size(); ++p) {
      const NodeId id = d.proposer_node(p)->self();
      const auto inflight = props[p]->outstanding_seqs();
      const std::set<std::uint64_t> inflight_set(inflight.begin(),
                                                 inflight.end());
      for (std::uint64_t s = 1; s <= props[p]->acked_seq(); ++s) {
        if (delivered_by_a.count({id, s}) == 0 &&
            inflight_set.count(s) == 0) {
          oracle.Flag("acked_lost", "proposer " + std::to_string(id) +
                                        " seq " + std::to_string(s) +
                                        " acked but never delivered");
          break;  // one per proposer is enough signal
        }
      }
    }
    if (kv_client != nullptr && kv_client->completed() < 10) {
      oracle.Flag("liveness", "kv client completed " +
                                  std::to_string(kv_client->completed()) +
                                  " < 10 operations");
    }
    if (session_client != nullptr && session_client->completed() < 10) {
      oracle.Flag("liveness",
                  "session client completed " +
                      std::to_string(session_client->completed()) +
                      " < 10 operations");
    }
    if (repart != nullptr && !repart->done()) {
      oracle.Flag("liveness",
                  "repartition plan did not complete (phase " +
                      std::to_string(static_cast<int>(repart->phase())) +
                      ")");
    }
  }

  RunStats rs;
  rs.violated = !oracle.ok();
  rs.first_oracle = oracle.first_oracle();
  rs.violations = oracle.violations();
  rs.digest = oracle.feed_digest();
  rs.deliveries = oracle.deliveries();
  rs.session_applies = session_oracle.session_applies();
  rs.local_reads = session_oracle.local_reads();
  rs.reconfig_applies = reconfig_oracle.applies();
  rs.repart_done = repart != nullptr && repart->done();
  rs.report = oracle.Report();
  return rs;
}

// Greedy event-drop shrinking: repeatedly remove the first event whose
// removal preserves a violation of `target`, until no single removal
// does (or the run budget is spent).
FaultPlan Shrink(const FaultPlan& plan, InstanceId inject,
                 const std::string& target, int max_runs, bool verbose) {
  FaultPlan cur = plan;
  int runs = 0;
  bool improved = true;
  while (improved && runs < max_runs) {
    improved = false;
    for (std::size_t i = 0; i < cur.events.size() && runs < max_runs; ++i) {
      FaultPlan cand = cur;
      cand.events.erase(cand.events.begin() +
                        static_cast<std::ptrdiff_t>(i));
      ++runs;
      RunStats rs = RunPlan(cand, inject, false);
      if (rs.violated && (target.empty() || rs.Has(target))) {
        cur = std::move(cand);
        improved = true;
        if (verbose) {
          std::fprintf(stderr, "  shrink: %zu events (run %d)\n",
                       cur.events.size(), runs);
        }
        break;
      }
    }
  }
  return cur;
}

std::string ArtifactPath(const std::string& dir, std::uint64_t seed) {
  return dir + "/mrp_fuzz_seed" + std::to_string(seed) + ".json";
}

bool WriteArtifact(const std::string& path, const ReplayArtifact& art) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << check::ToJson(art) << "\n";
  return static_cast<bool>(out);
}

// ---- Codec fuzzing ----------------------------------------------------

// Representative well-formed frames to mutate.
std::vector<Bytes> CodecCorpus() {
  using namespace ringpaxos;  // NOLINT
  std::vector<Bytes> corpus;
  auto add = [&corpus](const MessageBase& m) {
    corpus.push_back(net::EncodeMessage(m));
  };

  paxos::ClientMsg cm;
  cm.group = 1;
  cm.proposer = 7;
  cm.seq = 42;
  cm.sent_at = Millis(3);
  cm.payload_size = 4;
  cm.payload = Bytes{0xde, 0xad, 0xbe, 0xef};
  paxos::Value val;
  val.kind = paxos::Value::Kind::kBatch;
  val.msgs = {cm, cm};
  paxos::Value skip;
  skip.kind = paxos::Value::Kind::kSkip;
  skip.skip_count = 16;

  add(Submit(0, cm));
  add(SubmitAck(0, 1, 42));
  add(P2A(0, 1, 9, 77, val, {{8, 76}, {9, 77}}, {1, 2, 3}));
  add(P2A(1, 2, 10, 78, skip, {}, {4, 5}));
  add(P2B(0, 1, 9, 77, 2));
  add(DecisionMsg(0, {{9, 77}}));
  add(P1A(0, 3, 5, {1, 2}));
  add(P1B(0, 3, {{5, 2, val}, {6, 2, skip}}));
  add(Heartbeat(0, 3, 1));
  add(HeartbeatAck(0, 3));
  add(LearnReq(0, 5, 32));
  add(LearnRep(0, {{5, 77, val}}));
  add(DeliveryAck(0, 1, 42));
  add(TrimNotice(0, 100, 200));
  add(smr::SnapshotReq(0));
  add(smr::SnapshotRep(0, 12, {{1, "one"}, {2, "two"}}));
  add(recovery::SnapshotRequest(0, 0, 16));
  add(recovery::SnapshotChunk(3, 1, 4, {0x01, 0x02, 0x03}));
  add(recovery::SnapshotDone(3, 4, 4096, 0xfeedfacecafebeefULL));
  add(recovery::CheckpointRequest(7));
  add(recovery::CheckpointReport(7, 7, {{0, 1200}, {1, 900}}));
  add(recovery::FrontierAdvert(7, {{0, 1000}, {1, 800}}));
  add(smr::Response(9, 0, true, {{1, "one"}}));
  add(session::LeaseGrant(0, 3, 9, 1200, TimePoint(77000000)));
  add(session::LeaseAck(0, 3));
  add(session::LeaseRevoke(0, 3));
  add(session::SessionRead(1, 42, 10, 20));
  add(session::SessionReadRep(42, 0, session::SessionReadRep::kOk,
                              {{1, "one"}, {2, "two"}}));
  add(session::SessionReadRep(43, 0, session::SessionReadRep::kNoLease));
  add(session::Rejected(1, 42, session::Rejected::kOverload));
  {
    reconfig::RingConfiguration rcfg(
        2,
        {reconfig::GroupRoute{0, 0, 3, 10, 11, {3, 4}},
         reconfig::GroupRoute{1, 1, 5, 12, 13, {5, 6}}},
        {{0, 499999, 0}, {500000, 999999, 1}});
    add(reconfig::RoutingUpdate(rcfg.version(), rcfg.Encode()));
  }
  add(reconfig::HandoffRequest(77, 1));
  add(reconfig::PlanStatus(77, true));
  add(paxos::SubmitReq(cm));
  add(paxos::Phase1A(4, 2));
  add(paxos::Phase1B(4, 2, 1, val));
  add(paxos::Phase2A(4, 2, val));
  add(paxos::Phase2B(4, 2));
  add(paxos::DecisionMsg(4, val, 1));
  add(paxos::LearnReq(4));
  return corpus;
}

// Mutates corpus frames (and throws in fully random ones) through the
// decoder. Any crash/sanitizer report is a codec bug; decoded frames
// must also re-encode without crashing.
int RunCodecFuzz(std::uint64_t seed, int iterations) {
  const std::vector<Bytes> corpus = CodecCorpus();
  // Every corpus frame must decode cleanly before we start mutating.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (net::DecodeMessage(corpus[i]) == nullptr) {
      std::fprintf(stderr, "codec-fuzz: corpus frame %zu does not decode\n",
                   i);
      return 1;
    }
  }
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::uint64_t decoded = 0;
  for (int it = 0; it < iterations; ++it) {
    Bytes frame;
    const std::uint64_t strategy = rng.below(5);
    if (strategy == 0) {
      // Fully random frame.
      frame.resize(rng.below(64) + 1);
      for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
    } else {
      frame = corpus[rng.below(corpus.size())];
      switch (strategy) {
        case 1:  // truncate
          frame.resize(rng.below(frame.size() + 1));
          break;
        case 2:  // flip random bytes
          for (std::uint64_t k = rng.below(8) + 1; k > 0 && !frame.empty();
               --k) {
            frame[rng.below(frame.size())] ^=
                static_cast<std::uint8_t>(rng.below(256));
          }
          break;
        case 3:  // saturate a run of bytes (forges huge varint lengths)
          if (!frame.empty()) {
            std::size_t at = rng.below(frame.size());
            for (std::size_t k = 0; k < 9 && at + k < frame.size(); ++k) {
              frame[at + k] = 0xff;
            }
          }
          break;
        default:  // splice the tail of another corpus frame
          if (!frame.empty()) {
            const Bytes& other = corpus[rng.below(corpus.size())];
            frame.resize(rng.below(frame.size()) + 1);
            frame.insert(frame.end(), other.begin(), other.end());
          }
          break;
      }
    }
    MessagePtr m = net::DecodeMessage(frame);
    if (m != nullptr) {
      ++decoded;
      (void)net::EncodeMessage(*m);  // round trip must not crash either
    }
  }
  std::printf("codec-fuzz: %d frames, %llu decoded, no crashes\n",
              iterations, static_cast<unsigned long long>(decoded));
  return 0;
}

// ---- Modes ------------------------------------------------------------

int RunSweep(std::uint64_t start_seed, int n_seeds,
             const DeploymentShape& shape, const FaultBudget& budget,
             const std::string& artifact_dir, bool verbose) {
  for (int i = 0; i < n_seeds; ++i) {
    const std::uint64_t seed = start_seed + static_cast<std::uint64_t>(i);
    FaultPlan plan = check::GeneratePlan(seed, shape, budget);
    if (verbose) {
      std::fprintf(stderr, "seed %llu: %zu events\n",
                   static_cast<unsigned long long>(seed),
                   plan.events.size());
    }
    RunStats rs = RunPlan(plan, 0, verbose);
    if (!rs.violated) {
      std::printf("seed %llu ok (%llu deliveries, digest %016llx)\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(rs.deliveries),
                  static_cast<unsigned long long>(rs.digest));
      continue;
    }
    std::printf("seed %llu VIOLATION:\n%s\n",
                static_cast<unsigned long long>(seed), rs.report.c_str());
    std::printf("shrinking (%zu events)...\n", plan.events.size());
    FaultPlan shrunk = Shrink(plan, 0, rs.first_oracle, 200, verbose);
    RunStats final_rs = RunPlan(shrunk, 0, false);
    ReplayArtifact art;
    art.plan = shrunk;
    art.violated_oracle = final_rs.first_oracle;
    art.feed_digest = final_rs.digest;
    const std::string path = ArtifactPath(artifact_dir, seed);
    if (!WriteArtifact(path, art)) {
      std::fprintf(stderr, "failed to write artifact %s\n", path.c_str());
    } else {
      std::printf("artifact (%zu events) written to %s\n",
                  shrunk.events.size(), path.c_str());
    }
    return 1;
  }
  std::printf("all %d seeds passed\n", n_seeds);
  return 0;
}

int RunReplay(const std::string& path, bool verbose) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto art = check::ParseArtifact(ss.str());
  if (!art) {
    std::fprintf(stderr, "%s is not a valid replay artifact\n", path.c_str());
    return 2;
  }
  RunStats rs = RunPlan(art->plan, art->inject_corrupt_instance, verbose);
  const bool oracle_match = rs.first_oracle == art->violated_oracle;
  const bool digest_match = rs.digest == art->feed_digest;
  if (rs.violated && oracle_match && digest_match) {
    std::printf("replay OK: oracle '%s' reproduced, digest %016llx matches\n",
                rs.first_oracle.c_str(),
                static_cast<unsigned long long>(rs.digest));
    if (verbose) std::printf("%s\n", rs.report.c_str());
    return 0;
  }
  std::printf("replay MISMATCH: violated=%d oracle '%s' (expected '%s') "
              "digest %016llx (expected %016llx)\n%s\n",
              rs.violated ? 1 : 0, rs.first_oracle.c_str(),
              art->violated_oracle.c_str(),
              static_cast<unsigned long long>(rs.digest),
              static_cast<unsigned long long>(art->feed_digest),
              rs.report.c_str());
  return 1;
}

int RunSelfCheck(const std::string& artifact_dir, bool verbose) {
  const std::uint64_t seed = 42;
  const InstanceId corrupt_at = 200;
  DeploymentShape shape;
  FaultBudget budget;
  FaultPlan plan = check::GeneratePlan(seed, shape, budget);

  // 1. The clean run must pass — otherwise the fuzzer found a real bug
  //    and the self-check machinery cannot be validated on top of it.
  std::printf("self-check 1/6: clean run...\n");
  RunStats clean = RunPlan(plan, 0, verbose);
  if (clean.violated) {
    std::printf("clean run violated oracles (real bug?):\n%s\n",
                clean.report.c_str());
    return 1;
  }

  // 2. Injecting the agreement bug must trip the oracles.
  std::printf("self-check 2/6: injected corruption is caught...\n");
  RunStats bad = RunPlan(plan, corrupt_at, verbose);
  if (!bad.violated) {
    std::printf("injected corruption was NOT caught\n");
    return 1;
  }
  if (!bad.Has("agreement") && !bad.Has("integrity")) {
    std::printf("violation caught but not by agreement/integrity:\n%s\n",
                bad.report.c_str());
    return 1;
  }

  // 3. The shrinker must reduce the schedule: the injected bug is
  //    plan-independent, so nearly every event can be dropped.
  std::printf("self-check 3/6: shrinking %zu events...\n",
              plan.events.size());
  FaultPlan shrunk = Shrink(plan, corrupt_at, bad.first_oracle, 200, verbose);
  if (shrunk.events.size() > 5) {
    std::printf("shrinker left %zu events (> 5)\n", shrunk.events.size());
    return 1;
  }

  // 4. The artifact must round-trip through JSON and replay to the
  //    byte-identical oracle feed.
  std::printf("self-check 4/6: artifact round-trip + byte-identical replay...\n");
  RunStats final_rs = RunPlan(shrunk, corrupt_at, false);
  ReplayArtifact art;
  art.plan = shrunk;
  art.violated_oracle = final_rs.first_oracle;
  art.feed_digest = final_rs.digest;
  art.inject_corrupt_instance = corrupt_at;
  auto parsed = check::ParseArtifact(check::ToJson(art));
  if (!parsed || !(*parsed == art)) {
    std::printf("artifact JSON round-trip mismatch\n");
    return 1;
  }
  RunStats replay = RunPlan(parsed->plan, parsed->inject_corrupt_instance,
                            false);
  if (replay.digest != art.feed_digest ||
      replay.first_oracle != art.violated_oracle) {
    std::printf("replay diverged: digest %016llx vs %016llx, oracle '%s' "
                "vs '%s'\n",
                static_cast<unsigned long long>(replay.digest),
                static_cast<unsigned long long>(art.feed_digest),
                replay.first_oracle.c_str(), art.violated_oracle.c_str());
    return 1;
  }
  const std::string path = ArtifactPath(artifact_dir, seed);
  WriteArtifact(path, art);

  // 5. Session control plane (docs/SESSIONS.md): a seeded retry-storm
  //    plan with a learner crash and a lease drop must exercise the
  //    session machinery (duplicate submissions suppressed, local reads
  //    served) without tripping the exactly-once or lease-read oracles,
  //    round-trip through JSON, and replay to the identical feed digest.
  std::printf(
      "self-check 5/6: session retry storm + learner crash replays clean...\n");
  FaultPlan sp;
  sp.seed = 7;
  sp.shape.with_smr = true;
  auto put = [&sp](FaultEvent::Kind kind, std::int64_t at_ms,
                   std::int64_t dur_ms) {
    FaultEvent e;
    e.kind = kind;
    e.at = TimePoint(at_ms * 1000000);
    e.duration = Duration(dur_ms * 1000000);
    sp.events.push_back(e);
  };
  put(FaultEvent::Kind::kRetryStorm, 400, 20);
  put(FaultEvent::Kind::kDuplicateSubmit, 600, 20);
  put(FaultEvent::Kind::kLearnerCrash, 800, 300);
  put(FaultEvent::Kind::kLeaseDrop, 1200, 200);
  put(FaultEvent::Kind::kRetryStorm, 1600, 20);
  put(FaultEvent::Kind::kSessionAbandon, 2000, 20);
  put(FaultEvent::Kind::kDuplicateSubmit, 2400, 20);
  RunStats sess = RunPlan(sp, 0, verbose);
  if (sess.violated) {
    std::printf("session plan violated oracles:\n%s\n", sess.report.c_str());
    return 1;
  }
  if (sess.session_applies == 0 || sess.local_reads == 0) {
    std::printf("session plan did not exercise the machinery "
                "(applies=%llu local_reads=%llu)\n",
                static_cast<unsigned long long>(sess.session_applies),
                static_cast<unsigned long long>(sess.local_reads));
    return 1;
  }
  ReplayArtifact sart;
  sart.plan = sp;
  sart.feed_digest = sess.digest;
  auto sparsed = check::ParseArtifact(check::ToJson(sart));
  if (!sparsed || !(*sparsed == sart)) {
    std::printf("session artifact JSON round-trip mismatch\n");
    return 1;
  }
  RunStats sreplay = RunPlan(sparsed->plan, 0, false);
  if (sreplay.violated || sreplay.digest != sess.digest) {
    std::printf("session replay diverged: digest %016llx vs %016llx\n",
                static_cast<unsigned long long>(sreplay.digest),
                static_cast<unsigned long long>(sess.digest));
    return 1;
  }

  // 6. Reconfiguration (docs/RECONFIG.md): a scripted live split with a
  //    resubscribe storm and a coordinator crash mid-plan must complete
  //    the repartition, keep every oracle green, and replay to the
  //    identical feed digest.
  std::printf(
      "self-check 6/6: live split under faults completes and replays...\n");
  FaultPlan rp;
  rp.seed = 11;
  rp.shape.with_smr = true;
  auto rput = [&rp](FaultEvent::Kind kind, std::int64_t at_ms,
                    std::int64_t dur_ms) {
    FaultEvent e;
    e.kind = kind;
    e.at = TimePoint(at_ms * 1000000);
    e.duration = Duration(dur_ms * 1000000);
    rp.events.push_back(e);
  };
  rput(FaultEvent::Kind::kResubscribeStorm, 400, 300);
  rput(FaultEvent::Kind::kSplitLive, 800, 20);
  rput(FaultEvent::Kind::kReconfigCoordKill, 900, 250);
  rput(FaultEvent::Kind::kResubscribeStorm, 1600, 300);
  RunStats reconf = RunPlan(rp, 0, verbose);
  if (reconf.violated) {
    std::printf("reconfig plan violated oracles:\n%s\n",
                reconf.report.c_str());
    return 1;
  }
  if (!reconf.repart_done || reconf.reconfig_applies == 0) {
    std::printf("reconfig plan did not exercise the machinery "
                "(done=%d stamped applies=%llu)\n",
                reconf.repart_done ? 1 : 0,
                static_cast<unsigned long long>(reconf.reconfig_applies));
    return 1;
  }
  ReplayArtifact rart;
  rart.plan = rp;
  rart.feed_digest = reconf.digest;
  auto rparsed = check::ParseArtifact(check::ToJson(rart));
  if (!rparsed || !(*rparsed == rart)) {
    std::printf("reconfig artifact JSON round-trip mismatch\n");
    return 1;
  }
  RunStats rreplay = RunPlan(rparsed->plan, 0, false);
  if (rreplay.violated || rreplay.digest != reconf.digest) {
    std::printf("reconfig replay diverged: digest %016llx vs %016llx\n",
                static_cast<unsigned long long>(rreplay.digest),
                static_cast<unsigned long long>(reconf.digest));
    return 1;
  }

  std::printf("self-check PASSED (%zu-event artifact at %s, digest "
              "%016llx; session plan: %llu applies, %llu local reads; "
              "reconfig plan: split done, %llu stamped applies)\n",
              shrunk.events.size(), path.c_str(),
              static_cast<unsigned long long>(art.feed_digest),
              static_cast<unsigned long long>(sess.session_applies),
              static_cast<unsigned long long>(sess.local_reads),
              static_cast<unsigned long long>(reconf.reconfig_applies));
  return 0;
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds N] [--start-seed S] [--budget majority|anything]\n"
      "          [--rings R] [--ring-size K] [--spares P] [--sites S] [--smr]\n"
      "          [--artifact-dir DIR] [--replay FILE] [--self-check]\n"
      "          [--codec-fuzz N] [--probe RING:INSTANCE] [-v]\n",
      argv0);
}

std::uint64_t ParseU64(const char* s) {
  return std::strtoull(s, nullptr, 10);
}

}  // namespace
}  // namespace mrp

int main(int argc, char** argv) {
  using namespace mrp;  // NOLINT
  int n_seeds = 25;
  std::uint64_t start_seed = 1;
  check::DeploymentShape shape;
  check::FaultBudget budget;
  std::string artifact_dir = ".";
  std::string replay_path;
  std::string trace_path;
  bool self_check = false;
  int codec_iters = 0;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      n_seeds = static_cast<int>(ParseU64(next()));
    } else if (arg == "--start-seed") {
      start_seed = ParseU64(next());
    } else if (arg == "--budget") {
      const std::string b = next();
      if (b == "anything") {
        budget = check::FaultBudget::AnythingGoes();
      } else if (b != "majority") {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--rings") {
      shape.n_rings = static_cast<int>(ParseU64(next()));
    } else if (arg == "--ring-size") {
      shape.ring_size = static_cast<int>(ParseU64(next()));
    } else if (arg == "--spares") {
      shape.n_spares = static_cast<int>(ParseU64(next()));
    } else if (arg == "--sites") {
      shape.n_sites = static_cast<int>(ParseU64(next()));
    } else if (arg == "--smr") {
      shape.with_smr = true;
    } else if (arg == "--artifact-dir") {
      artifact_dir = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--self-check") {
      self_check = true;
    } else if (arg == "--codec-fuzz") {
      codec_iters = static_cast<int>(ParseU64(next()));
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--probe") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        Usage(argv[0]);
        return 2;
      }
      g_probe.active = true;
      g_probe.ring = static_cast<RingId>(ParseU64(spec.c_str()));
      g_probe.instance = ParseU64(spec.c_str() + colon + 1);
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  if (!trace_path.empty()) Tracer::Instance().Enable();
  int rc = 0;
  if (codec_iters > 0) {
    rc = RunCodecFuzz(start_seed, codec_iters);
  } else if (self_check) {
    rc = RunSelfCheck(artifact_dir, verbose);
  } else if (!replay_path.empty()) {
    rc = RunReplay(replay_path, verbose);
  } else {
    rc = RunSweep(start_seed, n_seeds, shape, budget, artifact_dir, verbose);
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::trunc);
    Tracer::Instance().WriteJsonl(out);
    std::fprintf(stderr, "trace (%zu events) written to %s\n",
                 Tracer::Instance().size(), trace_path.c_str());
  }
  return rc;
}
