#!/usr/bin/env python3
"""Self-test for tools/lint/mrp_lint, run as a ctest target.

1. The fixture tree (tools/lint/testdata) must produce exactly the
   golden findings in testdata/expected.txt, with exit status 1.
2. The real repository must be clean (exit status 0) -- the same gate
   scripts/check.sh --lint and CI enforce.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "mrp_lint")
TESTDATA = os.path.join(HERE, "testdata")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))


def run(args):
    proc = subprocess.run([sys.executable, LINT] + args,
                          capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout, proc.stderr


def fail(msg):
    print(f"lint_selftest: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    # --list-rules is the cheapest smoke test of the CLI.
    code, out, _ = run(["--list-rules"])
    if code != 0 or "unordered-iter" not in out:
        fail(f"--list-rules broke (exit {code})")

    # Golden findings over the fixture tree.
    code, out, _ = run(["--root", TESTDATA])
    if code != 1:
        fail(f"fixture run should exit 1 (findings), got {code}")
    with open(os.path.join(TESTDATA, "expected.txt"), encoding="utf-8") as f:
        expected = f.read()
    if out != expected:
        import difflib
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), out.splitlines(),
            "expected.txt", "actual", lineterm=""))
        fail("fixture findings diverge from golden:\n" + diff)

    # The real tree must be clean.
    code, out, err = run(["--root", REPO_ROOT])
    if code != 0:
        fail(f"repository is not lint-clean (exit {code}):\n{out}{err}")

    print("lint_selftest: OK")


if __name__ == "__main__":
    main()
