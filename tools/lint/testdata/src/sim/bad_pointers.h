// Fixture: pointer-keyed containers and pointer values in traces. Both
// make behaviour depend on heap layout (ASLR, allocation order), which
// the determinism gate would catch only at runtime.
#pragma once

#include <cstdint>
#include <map>
#include <set>

namespace fixture {

struct Node {};
struct TraceSink {
  void Record(std::uint64_t) {}
};

// Pointer as map key: flagged.
inline std::map<Node*, int> g_ranks;

// Pointer as set element: flagged.
inline std::set<const Node*> g_seen;

inline void LogNode(TraceSink& t, const Node* n) {
  // Pointer value into a trace: flagged.
  t.Record(reinterpret_cast<std::uintptr_t>(n));
}

}  // namespace fixture
