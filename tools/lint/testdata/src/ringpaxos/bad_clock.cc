// Fixture: wall-clock and raw-randomness violations in protocol code,
// plus one correctly suppressed use and two malformed suppressions.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture {

long Now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long Epoch() { return time(nullptr); }

int Dice() { return rand() % 6; }

int SeededDevice() {
  std::random_device rd;  // mrp-lint: allow(raw-rand) -- fixture: rationale long enough to count
  return static_cast<int>(rd());
}

// mrp-lint: allow(wall-clock)
long MissingRationale() { return clock(); }

// mrp-lint: allow(no-such-rule) -- names a rule that does not exist
long UnknownRule() { return 0; }

}  // namespace fixture
