// Fixture: a message struct with no codec round-trip test anywhere
// under tests/: flagged by codec-coverage.
#pragma once

struct MessageBase {};

namespace fixture {
struct Ping final : MessageBase {
  int nonce = 0;
};
}  // namespace fixture
