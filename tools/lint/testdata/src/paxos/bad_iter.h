// Fixture: unordered-container iteration in protocol code. Iteration
// order depends on the hash seed and heap layout, so any decision fed
// from it breaks seed-reproducibility.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

class Quorum {
 public:
  void Add(std::uint32_t n) { votes_.insert(n); }

  // Range-for over an unordered_set: flagged.
  std::uint32_t First() const {
    for (std::uint32_t v : votes_) return v;
    return 0;
  }

  // .begin() walk over an unordered_map: flagged.
  std::vector<std::uint64_t> Keys() const {
    std::vector<std::uint64_t> out;
    std::transform(weights_.begin(), weights_.end(), std::back_inserter(out),
                   [](const auto& kv) { return kv.first; });
    return out;
  }

  // find()/end() lookup: NOT flagged (touches no ordering).
  bool Has(std::uint32_t n) const { return votes_.find(n) != votes_.end(); }

 private:
  std::unordered_set<std::uint32_t> votes_;
  std::unordered_map<std::uint64_t, double> weights_;
};

}  // namespace fixture
