// Fixture: protocol role classes for the fingerprint-coverage rule.
// The fixture tree has no tests/, so a role with a digest is still
// flagged as unexercised.
#pragma once

class Protocol {};

namespace fixture {

// Flagged: mutable decision state but no Fingerprint() digest.
class Opaque final : public Protocol {
 public:
  void Step() { ++state_; }

 private:
  int state_ = 0;
};

// Flagged: has a Fingerprint() but no tests/ file exercises it.
class Unexercised final : public Protocol {
 public:
  unsigned long long Fingerprint() const { return state_; }

 private:
  unsigned long long state_ = 0;
};

// Suppressed with an audited rationale: not flagged.
// mrp-lint: allow(fingerprint-coverage) -- stateless pass-through adapter, no decision state to digest
class PassThrough final : public Protocol {};

}  // namespace fixture
