// Fixture: protocol code reaching src/runtime (transitively owns the
// wall clock): flagged by the include-graph rule.
#pragma once

#include "runtime/clock.h"

namespace fixture {

inline long LeakedNow() { return RuntimeNow(); }

}  // namespace fixture
