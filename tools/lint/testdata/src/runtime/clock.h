// Fixture: src/runtime owns the wall clock — steady_clock here is
// allowed and must produce no finding.
#pragma once

#include <chrono>

namespace fixture {

inline long RuntimeNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
