#!/usr/bin/env python3
"""Determinism gate: byte-identical traces/metrics or the build fails.

For each seed, runs determinism_probe three times:
  A. plain
  B. plain again                      -> catches wall clock / unseeded rand
  C. MALLOC_PERTURB_ + --perturb-heap -> catches heap-address dependence
     (pointer-keyed containers, pointer values in traces,
     unordered-container iteration order)

and byte-compares both output files (trace JSONL, metrics JSON) of B and
C against A. Registered as the `determinism_gate` ctest target.
"""

import argparse
import filecmp
import os
import subprocess
import sys


def first_diff(path_a, path_b):
    """Human-readable pointer at the first differing line."""
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        for i, (la, lb) in enumerate(zip(fa, fb), start=1):
            if la != lb:
                return (f"line {i}:\n  A: {la[:200]!r}\n  B: {lb[:200]!r}")
    return "files differ in length"


def run_probe(probe, out_base, seed, rings, run_ms, sites, recovery,
              sessions, reconfig, workload, perturb):
    trace = out_base + ".trace.jsonl"
    metrics = out_base + ".metrics.json"
    cmd = [probe, "--seed", str(seed), "--rings", str(rings),
           "--run-ms", str(run_ms), "--sites", str(sites),
           "--out-trace", trace, "--out-metrics", metrics]
    if recovery:
        cmd.append("--recovery")
    if sessions:
        cmd.append("--sessions")
    if reconfig:
        cmd.append("--reconfig")
    if workload:
        cmd.append("--workload")
    env = dict(os.environ)
    if perturb:
        cmd += ["--perturb-heap", str(0x9E3779B9 ^ seed)]
        # glibc fills freed/allocated chunks with this byte, so any read
        # of stale heap memory changes the output too.
        env["MALLOC_PERTURB_"] = "170"
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True,
                          check=False)
    if proc.returncode != 0:
        print(f"determinism_gate: probe failed ({' '.join(cmd)}):\n"
              f"{proc.stdout}{proc.stderr}", file=sys.stderr)
        sys.exit(1)
    return trace, metrics


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--probe", required=True)
    ap.add_argument("--workdir", required=True)
    ap.add_argument("--seeds", default="1,42")
    ap.add_argument("--rings", type=int, default=4)
    ap.add_argument("--run-ms", type=int, default=500)
    # >1 deploys the rings across a WAN full mesh (sim/topology.h), so
    # the gate also covers the topology layer's routing and RNG draws.
    ap.add_argument("--sites", type=int, default=1)
    # Adds a checkpoint coordinator + two recoverable learners, with a
    # mid-run crash/recover cycle of one of them (docs/RECOVERY.md).
    ap.add_argument("--recovery", action="store_true")
    # Adds the session control plane (replicas with dedup, lease grantor,
    # admission gateway, session client) plus scripted session faults
    # (docs/SESSIONS.md).
    ap.add_argument("--sessions", action="store_true")
    # Adds the elastic reconfiguration subsystem: a holder-routed session
    # client plus a RepartitionCoordinator performing a live key-range
    # split from ring 0 to ring 1 mid-run (docs/RECONFIG.md).
    ap.add_argument("--reconfig", action="store_true")
    # Replaces the closed-loop proposers with the workload engine: one
    # WorkloadDriver running the multi-tenant mix (Zipfian keys, MMPP
    # bursts, diurnal curves) over every ring (docs/WORKLOADS.md).
    ap.add_argument("--workload", action="store_true")
    args = ap.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    failures = []
    for seed in [int(s) for s in args.seeds.split(",")]:
        base = os.path.join(args.workdir, f"seed{seed}")
        ref = run_probe(args.probe, base + ".a", seed, args.rings,
                        args.run_ms, args.sites, args.recovery,
                        args.sessions, args.reconfig, args.workload,
                        perturb=False)
        for tag, perturb in (("rerun", False), ("perturbed", True)):
            got = run_probe(args.probe, f"{base}.{tag}", seed, args.rings,
                            args.run_ms, args.sites, args.recovery,
                            args.sessions, args.reconfig, args.workload,
                            perturb=perturb)
            for kind, a, b in (("trace", ref[0], got[0]),
                               ("metrics", ref[1], got[1])):
                if not filecmp.cmp(a, b, shallow=False):
                    failures.append(
                        f"seed {seed}: {kind} differs on {tag} run "
                        f"({a} vs {b})\n  first diff at {first_diff(a, b)}")
        print(f"determinism_gate: seed {seed} OK "
              f"(rerun + perturbed byte-identical)")

    if failures:
        print("determinism_gate: FAIL\n" + "\n".join(failures),
              file=sys.stderr)
        sys.exit(1)
    print("determinism_gate: OK")


if __name__ == "__main__":
    main()
