// Determinism probe: builds a multi-ring deployment on the simulator,
// drives a fixed workload, and dumps the structured trace (JSONL) plus a
// whole-deployment metrics snapshot. The determinism gate (run_gate.py)
// runs this binary several times per seed — including once with a
// perturbed heap — and byte-diffs the outputs: any dependence on wall
// clock, unseeded randomness, unordered-container iteration order or
// heap addresses shows up as a diff.
//
// Flags:
//   --seed <u64>         simulator seed (default 1)
//   --rings <n>          number of rings (default 4)
//   --sites <n>          WAN sites in a full mesh (default 1 = trivial
//                        single-switch topology); rings are pinned to
//                        sites round-robin, so the probe also covers the
//                        topology layer's routing/queueing/loss draws
//   --run-ms <n>         sim time to run, in milliseconds (default 500)
//   --perturb-heap <u64> allocate a salted pattern of decoy blocks before
//                        building the deployment, so every node lands at
//                        a different heap address than in a plain run
//   --recovery           enable the checkpoint & recovery subsystem: a
//                        CheckpointCoordinator + two recoverable
//                        learners, one of which crash-loses its state
//                        mid-run and bootstraps back from its peer's
//                        snapshot — the gate then proves checkpointing,
//                        snapshot transfer and restore are themselves
//                        byte-deterministic (docs/RECOVERY.md)
//   --sessions           enable the session control plane on ring 0: two
//                        session-enabled replicas (one serving lease-local
//                        reads), a lease grantor, an admission gateway and
//                        a session client, with a mid-run duplicate
//                        submit, retry storm, lease pause/resume cycle
//                        and session abandon — the gate then proves
//                        dedup, lease handling and admission control are
//                        themselves byte-deterministic (docs/SESSIONS.md)
//   --reconfig           enable the elastic reconfiguration subsystem
//                        (needs >= 2 rings): a holder-routed,
//                        session-stamped KV client runs against ring 0
//                        while a RepartitionCoordinator splits the upper
//                        half of the key space into ring 1's group
//                        mid-run — seal, chunked state handoff, routing
//                        flip and redirects must all be
//                        byte-deterministic (docs/RECONFIG.md)
//   --workload           replace the per-ring closed-loop proposers with
//                        one WorkloadDriver running the multi-tenant mix
//                        (Zipfian + MMPP-bursty + diurnal tenants) across
//                        every ring — the gate then proves the workload
//                        engine's arrival sampling, key-skew draws and
//                        session multiplexing are byte-deterministic
//                        (docs/WORKLOADS.md)
//   --out-trace <file>   JSONL trace output (required)
//   --out-metrics <file> metrics JSON output (required)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rand.h"
#include "common/trace.h"
#include "multiring/sim_deployment.h"
#include "reconfig/plan.h"
#include "reconfig/repartition.h"
#include "reconfig/ring_view.h"
#include "recovery/sim_harness.h"
#include "ringpaxos/proposer.h"
#include "smr/client.h"
#include "session/admission.h"
#include "session/client.h"
#include "session/lease.h"
#include "smr/replica.h"
#include "workload/sim_harness.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::uint64_t FlagU64(int argc, char** argv, const char* flag,
                      std::uint64_t fallback) {
  const char* v = FlagValue(argc, argv, flag);
  return v != nullptr ? std::strtoull(v, nullptr, 0) : fallback;
}

// Shifts heap addresses without touching the deployment itself: allocate
// a salted pseudo-random pattern of blocks, then free every other one so
// later allocations also see a fragmented free list. The survivors are
// returned so they stay live for the whole run.
std::vector<std::unique_ptr<char[]>> PerturbHeap(std::uint64_t salt) {
  mrp::Rng rng(salt);
  std::vector<std::unique_ptr<char[]>> decoys;
  std::vector<std::unique_ptr<char[]>> survivors;
  for (int i = 0; i < 512; ++i) {
    const std::size_t size = 16 + rng.below(4096);
    auto block = std::make_unique<char[]>(size);
    block[0] = static_cast<char>(rng.next());  // force the page in
    if (i % 2 == 0) {
      survivors.push_back(std::move(block));
    } else {
      decoys.push_back(std::move(block));  // freed when this scope ends
    }
  }
  return survivors;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_trace = FlagValue(argc, argv, "--out-trace");
  const char* out_metrics = FlagValue(argc, argv, "--out-metrics");
  if (out_trace == nullptr || out_metrics == nullptr) {
    std::fprintf(stderr,
                 "usage: determinism_probe --out-trace <file> --out-metrics "
                 "<file> [--seed N] [--rings N] [--run-ms N] "
                 "[--perturb-heap SALT]\n");
    return 2;
  }
  const std::uint64_t seed = FlagU64(argc, argv, "--seed", 1);
  const int rings = static_cast<int>(FlagU64(argc, argv, "--rings", 4));
  const int sites = static_cast<int>(FlagU64(argc, argv, "--sites", 1));
  const auto run_ms =
      static_cast<std::int64_t>(FlagU64(argc, argv, "--run-ms", 500));
  const bool recovery = HasFlag(argc, argv, "--recovery");
  const bool sessions = HasFlag(argc, argv, "--sessions");
  const bool reconfig = HasFlag(argc, argv, "--reconfig");
  const bool workload = HasFlag(argc, argv, "--workload");
  if (reconfig && rings < 2) {
    std::fprintf(stderr, "determinism_probe: --reconfig needs --rings >= 2\n");
    return 2;
  }

  std::vector<std::unique_ptr<char[]>> ballast;
  if (FlagValue(argc, argv, "--perturb-heap") != nullptr) {
    ballast = PerturbHeap(FlagU64(argc, argv, "--perturb-heap", 0));
  }

  mrp::Tracer::Instance().Clear();
  mrp::Tracer::Instance().Enable();

  mrp::multiring::DeploymentOptions opts;
  opts.n_rings = rings;
  opts.ring_size = 2;
  opts.net.seed = seed;
  if (sites > 1) {
    std::vector<std::string> names;
    for (int s = 0; s < sites; ++s) names.push_back("s" + std::to_string(s));
    mrp::sim::LinkSpec link;
    link.latency = mrp::Millis(10);
    link.jitter = mrp::Micros(100);
    opts.net.topology = mrp::sim::Topology::FullMesh(names, link);
    for (int r = 0; r < rings; ++r) {
      opts.ring_sites.push_back(static_cast<mrp::sim::SiteId>(r % sites));
    }
  }
  if (recovery) opts.frontier_gated_trim = true;
  mrp::multiring::SimDeployment d(opts);

  // One merge learner over all rings plus a single-ring learner, so both
  // delivery paths contribute trace events.
  std::vector<int> all_rings;
  for (int r = 0; r < rings; ++r) all_rings.push_back(r);
  d.AddMergeLearner(all_rings);
  d.AddRingLearner(0);

  // --recovery: coordinator + two recoverable learners; rec-b crash-loses
  // its state at 40% of the run and bootstraps from rec-a at 60%. All of
  // it lands in the same trace/metrics outputs the gate byte-compares.
  std::vector<std::unique_ptr<mrp::recovery::HashApp>> apps;
  mrp::recovery::SimRecoveryNode rec_a;
  mrp::recovery::SimRecoveryNode rec_b;
  auto make_rec_opts = [&](bool target) {
    mrp::recovery::RecoverableLearner::Options ro;
    apps.push_back(std::make_unique<mrp::recovery::HashApp>());
    auto* app = apps.back().get();
    ro.app = app;
    ro.merge.on_deliver = [app](mrp::GroupId g,
                                const mrp::paxos::ClientMsg& m) {
      app->Apply(g, m);
    };
    if (target) ro.fetch.peers = {rec_a.node->self()};
    return ro;
  };
  if (recovery) {
    auto& coord_node = d.net().AddNode();
    auto opts_a = make_rec_opts(false);
    opts_a.coordinator = coord_node.self();
    rec_a = mrp::recovery::AddRecoverableLearner(d, all_rings,
                                                 std::move(opts_a));
    auto opts_b = make_rec_opts(true);
    opts_b.coordinator = coord_node.self();
    rec_b = mrp::recovery::AddRecoverableLearner(d, all_rings,
                                                 std::move(opts_b));
    mrp::recovery::BindCheckpointCoordinator(
        d, coord_node, {rec_a.node->self(), rec_b.node->self()},
        mrp::Millis(100));
    auto& sched = d.net().scheduler();
    const mrp::NodeId coord_id = coord_node.self();
    sched.At(mrp::TimePoint(mrp::Millis(run_ms * 2 / 5).count()),
             [&rec_b] { rec_b.node->SetDown(true); });
    sched.At(mrp::TimePoint(mrp::Millis(run_ms * 3 / 5).count()),
             [&d, &rec_b, &make_rec_opts, &all_rings, coord_id] {
               auto ro = make_rec_opts(true);
               ro.coordinator = coord_id;
               mrp::recovery::ReviveRecoverableLearner(d, rec_b, all_rings,
                                                       std::move(ro));
               rec_b.node->SetDown(false);
               rec_b.node->Start();
             });
  }

  // --sessions: the control plane of docs/SESSIONS.md on ring 0, with a
  // scripted duplicate / retry storm / lease drop / abandon sequence so
  // dedup suppression, read fallback and generation bumps all land in
  // the byte-compared outputs.
  mrp::session::SessionClient* session_client = nullptr;
  mrp::sim::SimNode* session_client_node = nullptr;
  mrp::session::LeaseGrantor* lease_grantor = nullptr;
  mrp::sim::SimNode* lease_grantor_node = nullptr;
  if (sessions) {
    std::vector<mrp::sim::SimNode*> replica_nodes;
    for (int r = 0; r < 2; ++r) {
      auto& node = d.net().AddNode();
      mrp::smr::ReplicaConfig rc;
      rc.partition = 0;
      rc.partition_ring.ring = d.ring(0);
      rc.respond = (r == 0);
      rc.sessions = true;
      rc.serve_local_reads = (r == 1);
      node.BindProtocol(std::make_unique<mrp::smr::Replica>(rc));
      replica_nodes.push_back(&node);
      d.net().Subscribe(node.self(), d.ring(0).data_channel);
      d.net().Subscribe(node.self(), d.ring(0).control_channel);
    }
    auto& gw_node = d.net().AddNode();
    {
      mrp::session::GatewayConfig gc;
      gc.ring = d.ring(0).ring;
      gc.coordinator = d.ring(0).ring_members[0];
      gc.rate_per_sec = 2000;
      gc.burst = 32;
      gc.max_queue = 32;
      gw_node.BindProtocol(std::make_unique<mrp::session::Gateway>(gc));
    }
    {
      auto& node = d.net().AddNode();
      mrp::session::LeaseGrantorConfig lc;
      lc.ring = d.ring(0).ring;
      lc.group = d.ring(0).group;
      lc.holder = replica_nodes[1]->self();
      auto lg = std::make_unique<mrp::session::LeaseGrantor>(lc);
      lease_grantor = lg.get();
      lease_grantor_node = &node;
      node.BindProtocol(std::move(lg));
      d.net().Subscribe(node.self(), d.ring(0).data_channel);
      d.net().Subscribe(node.self(), d.ring(0).control_channel);
    }
    {
      mrp::sim::NodeSpec spec;
      spec.infinite_cpu = true;
      auto& node = d.net().AddNode(spec);
      mrp::session::SessionClientConfig sc;
      sc.session_id = 1;
      sc.ring = d.ring(0);
      sc.gateway = gw_node.self();
      sc.read_replica = replica_nodes[1]->self();
      sc.window = 4;
      auto cl = std::make_unique<mrp::session::SessionClient>(sc);
      session_client = cl.get();
      session_client_node = &node;
      node.BindProtocol(std::move(cl));
    }
    auto& sched = d.net().scheduler();
    auto at_frac = [run_ms](std::int64_t num, std::int64_t den) {
      return mrp::TimePoint(mrp::Millis(run_ms * num / den).count());
    };
    sched.At(at_frac(3, 10), [session_client, session_client_node] {
      session_client->TriggerDuplicate(*session_client_node);
    });
    sched.At(at_frac(4, 10), [lease_grantor] { lease_grantor->Pause(); });
    sched.At(at_frac(5, 10), [session_client, session_client_node] {
      session_client->TriggerRetryStorm(*session_client_node);
    });
    sched.At(at_frac(6, 10), [lease_grantor, lease_grantor_node] {
      lease_grantor->Resume(*lease_grantor_node);
    });
    sched.At(at_frac(7, 10), [session_client, session_client_node] {
      session_client->TriggerAbandon(*session_client_node);
    });
  }

  // --reconfig: a live group split on rings 0/1 (docs/RECONFIG.md). Two
  // session-enabled source replicas serve ring 0's group; a holder-routed,
  // session-stamped KV client drives writes across the whole key space;
  // at 30% of the run a RepartitionCoordinator seals the upper half of
  // the key space out of ring 0's group, hands the state off to a target
  // replica on ring 1 over the chunked snapshot transfer and flips the
  // routing via RoutingUpdate. The seal cut, handoff chunk order,
  // redirect traffic and the client's re-dispatches all land in the
  // byte-compared trace/metrics outputs.
  mrp::reconfig::RingHolder holder;
  if (reconfig) {
    constexpr std::uint64_t kPlanId = 41;
    constexpr std::uint64_t kSplitLo = 500000;
    constexpr std::uint64_t kKeyMax = 999999;
    auto route_of = [&d](int r) {
      mrp::reconfig::GroupRoute gr;
      gr.group = d.ring(r).group;
      gr.ring = d.ring(r).ring;
      gr.coordinator = d.ring(r).ring_members[0];
      gr.data_channel = d.ring(r).data_channel;
      gr.control_channel = d.ring(r).control_channel;
      gr.ring_members = d.ring(r).ring_members;
      return gr;
    };
    holder.Install(mrp::reconfig::RingConfiguration(
        1, {route_of(0)}, {{0, kKeyMax, d.ring(0).group}}));
    std::vector<mrp::sim::SimNode*> source_nodes;
    for (int r = 0; r < 2; ++r) {
      auto& node = d.net().AddNode();
      mrp::smr::ReplicaConfig rc;
      rc.partition = d.ring(0).group;
      rc.partition_ring.ring = d.ring(0);
      rc.respond = (r == 0);
      rc.sessions = true;
      source_nodes.push_back(&node);
      node.BindProtocol(std::make_unique<mrp::smr::Replica>(rc));
      d.net().Subscribe(node.self(), d.ring(0).data_channel);
      d.net().Subscribe(node.self(), d.ring(0).control_channel);
    }
    mrp::sim::SimNode* target_node = nullptr;
    {
      auto& node = d.net().AddNode();
      mrp::smr::ReplicaConfig rc;
      rc.partition = d.ring(1).group;
      rc.range = {kSplitLo, kKeyMax};
      rc.partition_ring.ring = d.ring(1);
      rc.respond = true;
      rc.sessions = true;
      rc.handoff_plan = kPlanId;
      rc.handoff_peers = {source_nodes[0]->self(), source_nodes[1]->self()};
      target_node = &node;
      node.BindProtocol(std::make_unique<mrp::smr::Replica>(rc));
      d.net().Subscribe(node.self(), d.ring(1).data_channel);
      d.net().Subscribe(node.self(), d.ring(1).control_channel);
    }
    mrp::sim::SimNode* client_node = nullptr;
    {
      mrp::sim::NodeSpec spec;
      spec.infinite_cpu = true;
      auto& node = d.net().AddNode(spec);
      mrp::smr::KvClientConfig cc;
      cc.rings.push_back(d.ring(0));
      cc.window = 4;
      cc.holder = &holder;
      cc.session_id = 5;
      client_node = &node;
      node.BindProtocol(std::make_unique<mrp::smr::KvClient>(cc));
    }
    {
      auto& node = d.net().AddNode();
      mrp::reconfig::RepartitionConfig pc;
      pc.plan = mrp::reconfig::ReconfigPlan::Split(
          kPlanId, d.ring(0).group, d.ring(1).group, kSplitLo, kKeyMax,
          d.ring(1).ring);
      pc.source_ring = d.ring(0);
      pc.next = mrp::reconfig::RingConfiguration(
          2, {route_of(0), route_of(1)},
          {{0, kSplitLo - 1, d.ring(0).group},
           {kSplitLo, kKeyMax, d.ring(1).group}});
      pc.target_replica = target_node->self();
      pc.notify = {client_node->self()};
      pc.start_delay = mrp::Millis(run_ms * 3 / 10);
      node.BindProtocol(
          std::make_unique<mrp::reconfig::RepartitionCoordinator>(pc));
    }
  }

  // --workload: the multi-tenant workload engine instead of plain
  // closed-loop proposers; otherwise two closed-loop clients per ring.
  if (workload) {
    mrp::workload::DriverConfig wc;
    wc.mix = mrp::workload::DefaultMix();
    auto* driver = mrp::workload::AddWorkloadDriver(d, std::move(wc),
                                                    all_rings);
    // Deliveries feed back into the driver's per-tenant accounting, so
    // the metrics snapshot the gate byte-compares covers both ends.
    d.AddMergeLearner(all_rings)->set_on_deliver(
        [driver, &d](mrp::GroupId, const mrp::paxos::ClientMsg& m) {
          driver->RecordDelivery(d.net().now(), m);
        });
  } else {
    for (int r = 0; r < rings; ++r) {
      for (int c = 0; c < 2; ++c) {
        mrp::ringpaxos::ProposerConfig pc;
        pc.payload_size = 512;
        pc.max_outstanding = 8;
        d.AddProposer(r, pc);
      }
    }
  }

  d.Start();
  d.RunFor(mrp::Millis(run_ms));

  std::ofstream metrics(out_metrics);
  if (!metrics) {
    std::fprintf(stderr, "determinism_probe: cannot write %s\n", out_metrics);
    return 2;
  }
  d.net().WriteMetricsJson(metrics);
  metrics.close();

  mrp::Tracer& tracer = mrp::Tracer::Instance();
  if (tracer.size() == 0) {
    std::fprintf(stderr, "determinism_probe: trace is empty (no events?)\n");
    return 2;
  }
  if (!tracer.WriteJsonlFile(out_trace)) {
    std::fprintf(stderr, "determinism_probe: cannot write %s\n", out_trace);
    return 2;
  }
  std::printf("determinism_probe: seed=%llu rings=%d events=%zu\n",
              static_cast<unsigned long long>(seed), rings, tracer.size());
  return 0;
}
