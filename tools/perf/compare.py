#!/usr/bin/env python3
"""Perf-gate comparator for the core benchmark suite.

Diffs a candidate benchmark JSON (bench/perf_suite's BENCH_core.json or
bench/scale_suite's BENCH_scale.json) against the committed baseline and
fails when any scenario's rate regressed by more than the threshold.
Baseline and candidate must carry the same schema tag. Latency percentiles are reported and warned on, but
only rates gate: p50/p99 of the short CI runs are too noisy to block on.

Usage:
  tools/perf/compare.py --baseline BENCH_core.json --candidate new.json \
      [--threshold 0.25] [--lat-threshold 1.0]
  tools/perf/compare.py --self-test

Exit codes: 0 ok, 1 regression (or malformed input), 2 usage error.

--self-test verifies the gate has teeth: it injects a synthetic
regression into a copy of a fixture and asserts the comparison fails,
then asserts an identical copy passes. CI runs this before trusting a
green comparison.
"""

import argparse
import copy
import json
import sys

SCHEMAS = ("mrp-bench-core/v1", "mrp-bench-scale/v1")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"perf-compare: cannot read {path}: {e}")
    if doc.get("schema") not in SCHEMAS:
        raise SystemExit(
            f"perf-compare: {path}: schema {doc.get('schema')!r}, "
            f"want one of {SCHEMAS!r}")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise SystemExit(f"perf-compare: {path}: no scenarios")
    return doc


def compare(baseline, candidate, threshold, lat_threshold):
    """Returns (failures, warnings, report_lines)."""
    failures, warnings, lines = [], [], []
    base = baseline["scenarios"]
    cand = candidate["scenarios"]
    lines.append(f"{'scenario':<28} {'baseline':>14} {'candidate':>14} "
                 f"{'delta':>8}  unit")
    for name, b in sorted(base.items()):
        c = cand.get(name)
        if c is None:
            failures.append(f"{name}: missing from candidate")
            continue
        if c.get("unit") != b.get("unit"):
            failures.append(f"{name}: unit changed "
                            f"{b.get('unit')!r} -> {c.get('unit')!r}")
            continue
        b_rate, c_rate = float(b["rate"]), float(c["rate"])
        delta = (c_rate - b_rate) / b_rate if b_rate > 0 else 0.0
        lines.append(f"{name:<28} {b_rate:>14.0f} {c_rate:>14.0f} "
                     f"{delta:>+7.1%}  {b['unit']}")
        if b_rate > 0 and c_rate < b_rate * (1.0 - threshold):
            failures.append(
                f"{name}: rate regressed {delta:+.1%} "
                f"({b_rate:.0f} -> {c_rate:.0f} {b['unit']}, "
                f"threshold -{threshold:.0%})")
        for q in ("p50_ns", "p99_ns", "p999_ns"):
            bq, cq = float(b.get(q, 0)), float(c.get(q, 0))
            if bq > 0 and cq > bq * (1.0 + lat_threshold):
                warnings.append(
                    f"{name}: {q} {bq:.0f} -> {cq:.0f} "
                    f"(+{(cq - bq) / bq:.0%}, warn-only)")
    for name in sorted(set(cand) - set(base)):
        warnings.append(f"{name}: new scenario, not in baseline "
                        "(refresh the baseline to start gating it)")
    return failures, warnings, lines


def run_compare(args):
    baseline = load(args.baseline)
    candidate = load(args.candidate)
    if baseline["schema"] != candidate["schema"]:
        raise SystemExit(
            f"perf-compare: schema mismatch: baseline "
            f"{baseline['schema']!r} vs candidate {candidate['schema']!r}")
    failures, warnings, lines = compare(
        baseline, candidate, args.threshold, args.lat_threshold)
    print("\n".join(lines))
    for w in warnings:
        print(f"warning: {w}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"perf-compare: OK ({len(baseline['scenarios'])} scenarios, "
          f"threshold -{args.threshold:.0%})")
    return 0


def self_test():
    fixture = {
        "schema": SCHEMAS[0],
        "mode": "quick",
        "scenarios": {
            "codec_encode": {"unit": "bytes/s", "rate": 1e9,
                             "p50_ns": 100, "p99_ns": 200, "ops": 1000},
            "sim_events": {"unit": "events/s", "rate": 5e7,
                           "p50_ns": 20, "p99_ns": 40, "ops": 100000},
        },
    }
    # Identical copy must pass.
    ok_fail, _, _ = compare(fixture, copy.deepcopy(fixture), 0.25, 1.0)
    if ok_fail:
        print("self-test: identical runs flagged as regression:", ok_fail)
        return 1
    # A 50% rate drop on one scenario must fail a 25% gate.
    slow = copy.deepcopy(fixture)
    slow["scenarios"]["codec_encode"]["rate"] = 0.5e9
    fail, _, _ = compare(fixture, slow, 0.25, 1.0)
    if not fail:
        print("self-test: injected 50% regression was not caught")
        return 1
    # A missing scenario must fail.
    missing = copy.deepcopy(fixture)
    del missing["scenarios"]["sim_events"]
    fail, _, _ = compare(fixture, missing, 0.25, 1.0)
    if not fail:
        print("self-test: missing scenario was not caught")
        return 1
    # A small wobble inside the threshold must pass.
    wobble = copy.deepcopy(fixture)
    wobble["scenarios"]["codec_encode"]["rate"] = 0.9e9
    fail, _, _ = compare(fixture, wobble, 0.25, 1.0)
    if fail:
        print("self-test: -10% wobble failed a 25% gate:", fail)
        return 1
    # The scale schema is accepted too, and p999_ns rides along
    # untouched (only p50/p99 are warned on, only rate gates).
    scale = copy.deepcopy(fixture)
    scale["schema"] = SCHEMAS[1]
    for sc in scale["scenarios"].values():
        sc["p999_ns"] = 500
    fail, _, _ = compare(scale, copy.deepcopy(scale), 0.25, 1.0)
    if fail:
        print("self-test: identical scale-schema runs flagged:", fail)
        return 1
    print("self-test: OK (gate catches regressions and missing scenarios)")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--baseline", help="committed BENCH_core.json")
    p.add_argument("--candidate", help="freshly produced BENCH_core.json")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="max tolerated fractional rate drop (default 0.25)")
    p.add_argument("--lat-threshold", type=float, default=1.0,
                   help="fractional p50/p99 growth that triggers a "
                        "warning (default 1.0 = 2x)")
    p.add_argument("--self-test", action="store_true",
                   help="verify the gate fails on an injected regression")
    args = p.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.candidate:
        p.error("--baseline and --candidate are required (or --self-test)")
    sys.exit(run_compare(args))


if __name__ == "__main__":
    main()
