# Empty dependencies file for fig09_lambda_equal.
# This may be replaced when dependencies are built.
