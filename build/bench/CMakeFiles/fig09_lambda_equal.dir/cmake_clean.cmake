file(REMOVE_RECURSE
  "CMakeFiles/fig09_lambda_equal.dir/fig09_lambda_equal.cc.o"
  "CMakeFiles/fig09_lambda_equal.dir/fig09_lambda_equal.cc.o.d"
  "fig09_lambda_equal"
  "fig09_lambda_equal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_lambda_equal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
