# Empty dependencies file for fig06_subscribe_all.
# This may be replaced when dependencies are built.
