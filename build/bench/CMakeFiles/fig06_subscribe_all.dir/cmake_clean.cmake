file(REMOVE_RECURSE
  "CMakeFiles/fig06_subscribe_all.dir/fig06_subscribe_all.cc.o"
  "CMakeFiles/fig06_subscribe_all.dir/fig06_subscribe_all.cc.o.d"
  "fig06_subscribe_all"
  "fig06_subscribe_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_subscribe_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
