# Empty dependencies file for fig10_lambda_skewed.
# This may be replaced when dependencies are built.
