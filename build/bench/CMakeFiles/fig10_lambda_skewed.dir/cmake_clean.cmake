file(REMOVE_RECURSE
  "CMakeFiles/fig10_lambda_skewed.dir/fig10_lambda_skewed.cc.o"
  "CMakeFiles/fig10_lambda_skewed.dir/fig10_lambda_skewed.cc.o.d"
  "fig10_lambda_skewed"
  "fig10_lambda_skewed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lambda_skewed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
