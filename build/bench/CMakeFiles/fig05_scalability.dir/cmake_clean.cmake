file(REMOVE_RECURSE
  "CMakeFiles/fig05_scalability.dir/fig05_scalability.cc.o"
  "CMakeFiles/fig05_scalability.dir/fig05_scalability.cc.o.d"
  "fig05_scalability"
  "fig05_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
