# Empty dependencies file for fig05_scalability.
# This may be replaced when dependencies are built.
