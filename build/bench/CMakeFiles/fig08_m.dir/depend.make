# Empty dependencies file for fig08_m.
# This may be replaced when dependencies are built.
