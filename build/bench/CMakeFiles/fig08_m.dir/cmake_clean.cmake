file(REMOVE_RECURSE
  "CMakeFiles/fig08_m.dir/fig08_m.cc.o"
  "CMakeFiles/fig08_m.dir/fig08_m.cc.o.d"
  "fig08_m"
  "fig08_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
