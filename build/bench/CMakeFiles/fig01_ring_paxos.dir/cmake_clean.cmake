file(REMOVE_RECURSE
  "CMakeFiles/fig01_ring_paxos.dir/fig01_ring_paxos.cc.o"
  "CMakeFiles/fig01_ring_paxos.dir/fig01_ring_paxos.cc.o.d"
  "fig01_ring_paxos"
  "fig01_ring_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_ring_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
