# Empty dependencies file for fig01_ring_paxos.
# This may be replaced when dependencies are built.
