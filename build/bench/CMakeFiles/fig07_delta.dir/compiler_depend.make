# Empty compiler generated dependencies file for fig07_delta.
# This may be replaced when dependencies are built.
