file(REMOVE_RECURSE
  "CMakeFiles/fig07_delta.dir/fig07_delta.cc.o"
  "CMakeFiles/fig07_delta.dir/fig07_delta.cc.o.d"
  "fig07_delta"
  "fig07_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
