file(REMOVE_RECURSE
  "CMakeFiles/fig02_partitioned_single_ring.dir/fig02_partitioned_single_ring.cc.o"
  "CMakeFiles/fig02_partitioned_single_ring.dir/fig02_partitioned_single_ring.cc.o.d"
  "fig02_partitioned_single_ring"
  "fig02_partitioned_single_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_partitioned_single_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
