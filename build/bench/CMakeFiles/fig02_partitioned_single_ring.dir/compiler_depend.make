# Empty compiler generated dependencies file for fig02_partitioned_single_ring.
# This may be replaced when dependencies are built.
