# Empty compiler generated dependencies file for fig11_lambda_oscillating.
# This may be replaced when dependencies are built.
