file(REMOVE_RECURSE
  "CMakeFiles/fig11_lambda_oscillating.dir/fig11_lambda_oscillating.cc.o"
  "CMakeFiles/fig11_lambda_oscillating.dir/fig11_lambda_oscillating.cc.o.d"
  "fig11_lambda_oscillating"
  "fig11_lambda_oscillating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_lambda_oscillating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
