# Empty compiler generated dependencies file for fig12_coordinator_failure.
# This may be replaced when dependencies are built.
