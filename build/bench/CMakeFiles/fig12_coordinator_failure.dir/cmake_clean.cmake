file(REMOVE_RECURSE
  "CMakeFiles/fig12_coordinator_failure.dir/fig12_coordinator_failure.cc.o"
  "CMakeFiles/fig12_coordinator_failure.dir/fig12_coordinator_failure.cc.o.d"
  "fig12_coordinator_failure"
  "fig12_coordinator_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_coordinator_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
