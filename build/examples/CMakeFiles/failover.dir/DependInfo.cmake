
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/failover.cpp" "examples/CMakeFiles/failover.dir/failover.cpp.o" "gcc" "examples/CMakeFiles/failover.dir/failover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/multiring/CMakeFiles/mrp_multiring.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ringpaxos/CMakeFiles/mrp_ringpaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/paxos/CMakeFiles/mrp_paxos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
