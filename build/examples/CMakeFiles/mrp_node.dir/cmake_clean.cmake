file(REMOVE_RECURSE
  "CMakeFiles/mrp_node.dir/mrp_node.cpp.o"
  "CMakeFiles/mrp_node.dir/mrp_node.cpp.o.d"
  "mrp_node"
  "mrp_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
