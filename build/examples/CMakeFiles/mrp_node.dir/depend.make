# Empty dependencies file for mrp_node.
# This may be replaced when dependencies are built.
