# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/paxos_test[1]_include.cmake")
include("/root/repo/build/tests/ringpaxos_test[1]_include.cmake")
include("/root/repo/build/tests/multiring_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/smr_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/units_test[1]_include.cmake")
include("/root/repo/build/tests/catchup_test[1]_include.cmake")
include("/root/repo/build/tests/ringnode_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/smr_more_test[1]_include.cmake")
include("/root/repo/build/tests/plumbing_test[1]_include.cmake")
