# Empty compiler generated dependencies file for plumbing_test.
# This may be replaced when dependencies are built.
