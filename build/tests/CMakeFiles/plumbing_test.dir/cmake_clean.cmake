file(REMOVE_RECURSE
  "CMakeFiles/plumbing_test.dir/plumbing_test.cc.o"
  "CMakeFiles/plumbing_test.dir/plumbing_test.cc.o.d"
  "plumbing_test"
  "plumbing_test.pdb"
  "plumbing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plumbing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
