file(REMOVE_RECURSE
  "CMakeFiles/smr_more_test.dir/smr_more_test.cc.o"
  "CMakeFiles/smr_more_test.dir/smr_more_test.cc.o.d"
  "smr_more_test"
  "smr_more_test.pdb"
  "smr_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smr_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
