# Empty dependencies file for smr_more_test.
# This may be replaced when dependencies are built.
