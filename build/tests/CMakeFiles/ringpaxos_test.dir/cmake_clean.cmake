file(REMOVE_RECURSE
  "CMakeFiles/ringpaxos_test.dir/ringpaxos_test.cc.o"
  "CMakeFiles/ringpaxos_test.dir/ringpaxos_test.cc.o.d"
  "ringpaxos_test"
  "ringpaxos_test.pdb"
  "ringpaxos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringpaxos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
