# Empty dependencies file for ringpaxos_test.
# This may be replaced when dependencies are built.
