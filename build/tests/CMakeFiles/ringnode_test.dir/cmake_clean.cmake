file(REMOVE_RECURSE
  "CMakeFiles/ringnode_test.dir/ringnode_test.cc.o"
  "CMakeFiles/ringnode_test.dir/ringnode_test.cc.o.d"
  "ringnode_test"
  "ringnode_test.pdb"
  "ringnode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringnode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
