# Empty dependencies file for ringnode_test.
# This may be replaced when dependencies are built.
