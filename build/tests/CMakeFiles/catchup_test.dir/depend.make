# Empty dependencies file for catchup_test.
# This may be replaced when dependencies are built.
