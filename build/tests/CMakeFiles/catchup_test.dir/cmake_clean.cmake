file(REMOVE_RECURSE
  "CMakeFiles/catchup_test.dir/catchup_test.cc.o"
  "CMakeFiles/catchup_test.dir/catchup_test.cc.o.d"
  "catchup_test"
  "catchup_test.pdb"
  "catchup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catchup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
