# Empty compiler generated dependencies file for multiring_test.
# This may be replaced when dependencies are built.
