file(REMOVE_RECURSE
  "CMakeFiles/multiring_test.dir/multiring_test.cc.o"
  "CMakeFiles/multiring_test.dir/multiring_test.cc.o.d"
  "multiring_test"
  "multiring_test.pdb"
  "multiring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
