file(REMOVE_RECURSE
  "libmrp_sim.a"
)
