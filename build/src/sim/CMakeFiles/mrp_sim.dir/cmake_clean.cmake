file(REMOVE_RECURSE
  "CMakeFiles/mrp_sim.dir/network.cc.o"
  "CMakeFiles/mrp_sim.dir/network.cc.o.d"
  "libmrp_sim.a"
  "libmrp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
