
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/lcr.cc" "src/baselines/CMakeFiles/mrp_baselines.dir/lcr.cc.o" "gcc" "src/baselines/CMakeFiles/mrp_baselines.dir/lcr.cc.o.d"
  "/root/repo/src/baselines/mencius.cc" "src/baselines/CMakeFiles/mrp_baselines.dir/mencius.cc.o" "gcc" "src/baselines/CMakeFiles/mrp_baselines.dir/mencius.cc.o.d"
  "/root/repo/src/baselines/totem.cc" "src/baselines/CMakeFiles/mrp_baselines.dir/totem.cc.o" "gcc" "src/baselines/CMakeFiles/mrp_baselines.dir/totem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/paxos/CMakeFiles/mrp_paxos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
