file(REMOVE_RECURSE
  "libmrp_baselines.a"
)
