# Empty dependencies file for mrp_baselines.
# This may be replaced when dependencies are built.
