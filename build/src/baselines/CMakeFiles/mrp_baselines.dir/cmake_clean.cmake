file(REMOVE_RECURSE
  "CMakeFiles/mrp_baselines.dir/lcr.cc.o"
  "CMakeFiles/mrp_baselines.dir/lcr.cc.o.d"
  "CMakeFiles/mrp_baselines.dir/mencius.cc.o"
  "CMakeFiles/mrp_baselines.dir/mencius.cc.o.d"
  "CMakeFiles/mrp_baselines.dir/totem.cc.o"
  "CMakeFiles/mrp_baselines.dir/totem.cc.o.d"
  "libmrp_baselines.a"
  "libmrp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
