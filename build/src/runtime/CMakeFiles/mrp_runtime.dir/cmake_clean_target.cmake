file(REMOVE_RECURSE
  "libmrp_runtime.a"
)
