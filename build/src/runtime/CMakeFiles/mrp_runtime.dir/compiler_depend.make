# Empty compiler generated dependencies file for mrp_runtime.
# This may be replaced when dependencies are built.
