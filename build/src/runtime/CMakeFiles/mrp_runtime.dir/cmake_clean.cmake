file(REMOVE_RECURSE
  "CMakeFiles/mrp_runtime.dir/cluster_config.cc.o"
  "CMakeFiles/mrp_runtime.dir/cluster_config.cc.o.d"
  "CMakeFiles/mrp_runtime.dir/file_storage.cc.o"
  "CMakeFiles/mrp_runtime.dir/file_storage.cc.o.d"
  "CMakeFiles/mrp_runtime.dir/node_runtime.cc.o"
  "CMakeFiles/mrp_runtime.dir/node_runtime.cc.o.d"
  "CMakeFiles/mrp_runtime.dir/udp.cc.o"
  "CMakeFiles/mrp_runtime.dir/udp.cc.o.d"
  "libmrp_runtime.a"
  "libmrp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
