
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ringpaxos/learner.cc" "src/ringpaxos/CMakeFiles/mrp_ringpaxos.dir/learner.cc.o" "gcc" "src/ringpaxos/CMakeFiles/mrp_ringpaxos.dir/learner.cc.o.d"
  "/root/repo/src/ringpaxos/proposer.cc" "src/ringpaxos/CMakeFiles/mrp_ringpaxos.dir/proposer.cc.o" "gcc" "src/ringpaxos/CMakeFiles/mrp_ringpaxos.dir/proposer.cc.o.d"
  "/root/repo/src/ringpaxos/ring_node.cc" "src/ringpaxos/CMakeFiles/mrp_ringpaxos.dir/ring_node.cc.o" "gcc" "src/ringpaxos/CMakeFiles/mrp_ringpaxos.dir/ring_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/paxos/CMakeFiles/mrp_paxos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
