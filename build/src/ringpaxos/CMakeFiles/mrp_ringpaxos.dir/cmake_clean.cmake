file(REMOVE_RECURSE
  "CMakeFiles/mrp_ringpaxos.dir/learner.cc.o"
  "CMakeFiles/mrp_ringpaxos.dir/learner.cc.o.d"
  "CMakeFiles/mrp_ringpaxos.dir/proposer.cc.o"
  "CMakeFiles/mrp_ringpaxos.dir/proposer.cc.o.d"
  "CMakeFiles/mrp_ringpaxos.dir/ring_node.cc.o"
  "CMakeFiles/mrp_ringpaxos.dir/ring_node.cc.o.d"
  "libmrp_ringpaxos.a"
  "libmrp_ringpaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_ringpaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
