file(REMOVE_RECURSE
  "libmrp_ringpaxos.a"
)
