# Empty dependencies file for mrp_ringpaxos.
# This may be replaced when dependencies are built.
