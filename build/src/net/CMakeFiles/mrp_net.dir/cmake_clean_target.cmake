file(REMOVE_RECURSE
  "libmrp_net.a"
)
