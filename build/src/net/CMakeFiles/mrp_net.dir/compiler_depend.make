# Empty compiler generated dependencies file for mrp_net.
# This may be replaced when dependencies are built.
