file(REMOVE_RECURSE
  "CMakeFiles/mrp_net.dir/codec.cc.o"
  "CMakeFiles/mrp_net.dir/codec.cc.o.d"
  "libmrp_net.a"
  "libmrp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
