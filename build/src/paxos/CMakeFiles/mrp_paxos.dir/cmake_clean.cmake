file(REMOVE_RECURSE
  "CMakeFiles/mrp_paxos.dir/roles.cc.o"
  "CMakeFiles/mrp_paxos.dir/roles.cc.o.d"
  "libmrp_paxos.a"
  "libmrp_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
