file(REMOVE_RECURSE
  "libmrp_paxos.a"
)
