# Empty compiler generated dependencies file for mrp_paxos.
# This may be replaced when dependencies are built.
