# Empty dependencies file for mrp_smr.
# This may be replaced when dependencies are built.
