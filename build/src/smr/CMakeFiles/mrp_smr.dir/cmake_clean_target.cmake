file(REMOVE_RECURSE
  "libmrp_smr.a"
)
