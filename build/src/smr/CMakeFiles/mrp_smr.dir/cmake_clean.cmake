file(REMOVE_RECURSE
  "CMakeFiles/mrp_smr.dir/client.cc.o"
  "CMakeFiles/mrp_smr.dir/client.cc.o.d"
  "CMakeFiles/mrp_smr.dir/replica.cc.o"
  "CMakeFiles/mrp_smr.dir/replica.cc.o.d"
  "libmrp_smr.a"
  "libmrp_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
