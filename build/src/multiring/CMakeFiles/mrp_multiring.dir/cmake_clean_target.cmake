file(REMOVE_RECURSE
  "libmrp_multiring.a"
)
