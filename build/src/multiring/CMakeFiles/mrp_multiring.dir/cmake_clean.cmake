file(REMOVE_RECURSE
  "CMakeFiles/mrp_multiring.dir/merge_learner.cc.o"
  "CMakeFiles/mrp_multiring.dir/merge_learner.cc.o.d"
  "libmrp_multiring.a"
  "libmrp_multiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_multiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
