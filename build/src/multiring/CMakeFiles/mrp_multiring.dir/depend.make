# Empty dependencies file for mrp_multiring.
# This may be replaced when dependencies are built.
