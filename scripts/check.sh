#!/usr/bin/env bash
# Tier-1 verification, exactly as CI runs it (see .github/workflows/ci.yml):
#   scripts/check.sh              plain build + ctest (the tier-1 gate)
#   scripts/check.sh --sanitize   ASan/UBSan build + ctest
#   scripts/check.sh --werror     warnings-as-errors build (no tests)
# Each mode uses its own build directory so they never poison each other.
set -euo pipefail

cd "$(dirname "$0")/.."

mode=plain
case "${1:-}" in
  --sanitize) mode=sanitize ;;
  --werror) mode=werror ;;
  "") ;;
  *)
    echo "usage: $0 [--sanitize|--werror]" >&2
    exit 2
    ;;
esac

jobs="$(nproc 2>/dev/null || echo 4)"

case "$mode" in
  plain)
    cmake -B build -S .
    cmake --build build -j "$jobs"
    ctest --test-dir build --output-on-failure -j "$jobs"
    ;;
  sanitize)
    cmake -B build-asan -S . -DMRP_SANITIZE=ON
    cmake --build build-asan -j "$jobs"
    ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      ctest --test-dir build-asan --output-on-failure -j "$jobs"
    ;;
  werror)
    cmake -B build-werror -S . -DMRP_WERROR=ON
    cmake --build build-werror -j "$jobs"
    ;;
esac

echo "check.sh: $mode OK"
