#!/usr/bin/env bash
# Tier-1 verification, exactly as CI runs it (see .github/workflows/ci.yml):
#   scripts/check.sh              plain build + ctest (the tier-1 gate)
#   scripts/check.sh --sanitize   ASan/UBSan build + ctest
#   scripts/check.sh --tsan       ThreadSanitizer build + the thread-
#                                 bearing tests (src/runtime event loop
#                                 and UDP transport); suppressions live
#                                 in tsan.supp (audited, currently empty)
#   scripts/check.sh --coverage   gcov line-coverage build + ctest +
#                                 tools/coverage/report.py gate (soft
#                                 floor on src/paxos+ringpaxos+multiring)
#   scripts/check.sh --mc         model-checker gate (docs/MODEL_CHECKING.md):
#                                 mrp_mc self-check + exhaustive ring1
#                                 run with the DPOR-vs-naive comparison
#   scripts/check.sh --werror     warnings-as-errors build (no tests)
#   scripts/check.sh --lint       mrp_lint + clang-tidy + cppcheck
#                                 (docs/STATIC_ANALYSIS.md; tools that are
#                                 not installed are skipped with a notice —
#                                 CI always has them)
#   scripts/check.sh --format     clang-format check, only on files this
#                                 branch touches relative to origin/main
#   scripts/check.sh --fuzz       chaos-fuzz sweep (docs/CHECKING.md):
#                                 FUZZ_SEEDS seeds (default 25) under the
#                                 majority budget + the replay self-check
#   scripts/check.sh --perf       perf smoke (docs/PERF.md): quick run of
#                                 bench/perf_suite compared against the
#                                 committed BENCH_core.json baseline
#                                 (PERF_THRESHOLD, default 0.35)
# Each mode uses its own build directory so they never poison each other.
set -euo pipefail

cd "$(dirname "$0")/.."

mode=plain
case "${1:-}" in
  --sanitize) mode=sanitize ;;
  --tsan) mode=tsan ;;
  --coverage) mode=coverage ;;
  --mc) mode=mc ;;
  --werror) mode=werror ;;
  --lint) mode=lint ;;
  --format) mode=format ;;
  --fuzz) mode=fuzz ;;
  --perf) mode=perf ;;
  "") ;;
  *)
    echo "usage: $0 [--sanitize|--tsan|--coverage|--mc|--werror|--lint|--format|--fuzz|--perf]" >&2
    exit 2
    ;;
esac

jobs="$(nproc 2>/dev/null || echo 4)"

case "$mode" in
  plain)
    cmake -B build -S .
    cmake --build build -j "$jobs"
    ctest --test-dir build --output-on-failure -j "$jobs"
    ;;
  sanitize)
    cmake -B build-asan -S . -DMRP_SANITIZE=ON
    cmake --build build-asan -j "$jobs"
    ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      ctest --test-dir build-asan --output-on-failure -j "$jobs"
    ;;
  tsan)
    cmake -B build-tsan -S . -DMRP_SANITIZE=thread
    cmake --build build-tsan -j "$jobs" --target runtime_test plumbing_test
    # Only the thread-bearing binaries: the sim suite is single-threaded
    # by construction, so running it under TSan would cost 10x for no
    # signal. halt_on_error so the first race fails the gate.
    TSAN_OPTIONS="suppressions=$PWD/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
      ./build-tsan/tests/runtime_test
    TSAN_OPTIONS="suppressions=$PWD/tsan.supp halt_on_error=1 second_deadlock_stack=1" \
      ./build-tsan/tests/plumbing_test
    ;;
  coverage)
    cmake -B build-cov -S . -DMRP_COVERAGE=ON
    cmake --build build-cov -j "$jobs"
    ctest --test-dir build-cov --output-on-failure -j "$jobs" \
      -E 'mc_ring1_exhaustive|mc_self_check'  # minutes-long; no extra coverage
    python3 tools/coverage/report.py --build-dir build-cov \
      --out build-cov/coverage.txt
    ;;
  mc)
    cmake -B build -S .
    cmake --build build -j "$jobs" --target mrp_mc
    ./build/tools/mc/mrp_mc --self-check
    ./build/tools/mc/mrp_mc --config ring1 --compare
    ;;
  werror)
    cmake -B build-werror -S . -DMRP_WERROR=ON
    cmake --build build-werror -j "$jobs"
    ;;
  lint)
    # 1. Project-specific determinism/protocol-safety lint (always runs;
    #    only needs python3). Self-test first so a broken linter cannot
    #    silently pass the tree.
    python3 tools/lint/lint_selftest.py
    python3 tools/lint/mrp_lint --root .

    # 2. clang-tidy over the full compilation database.
    if command -v clang-tidy >/dev/null 2>&1; then
      cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
      mapfile -t tidy_sources < <(
        git ls-files 'src/*.cc' 'bench/*.cc' 'tests/*.cc' 'tools/*.cc')
      if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -p build-lint -quiet "${tidy_sources[@]}"
      else
        clang-tidy -p build-lint --quiet "${tidy_sources[@]}"
      fi
    else
      echo "check.sh: clang-tidy not installed; skipping (CI enforces it)"
    fi

    # 3. cppcheck, inline suppressions only (`// cppcheck-suppress <id>`
    #    with a neighbouring why-comment).
    if command -v cppcheck >/dev/null 2>&1; then
      cppcheck --std=c++20 --language=c++ --enable=warning,performance,portability \
        --inline-suppr --suppressions-list=.cppcheck-suppressions \
        --error-exitcode=1 --quiet -I src src bench tests tools/determinism
    else
      echo "check.sh: cppcheck not installed; skipping (CI enforces it)"
    fi
    ;;
  format)
    if ! command -v clang-format >/dev/null 2>&1; then
      echo "check.sh: clang-format not installed; skipping (CI enforces it)"
      exit 0
    fi
    # Only files this branch touches: formatting the whole tree at once
    # would bury real diffs in churn. The base ref can be missing or
    # unrelated after a force-push / rebase / shallow fetch, so fall
    # back: configured base -> its merge-base with HEAD -> HEAD~1 ->
    # empty tree (full check).
    base="${CHECK_FORMAT_BASE:-origin/main}"
    if ! git rev-parse --verify -q "$base^{commit}" >/dev/null; then
      base=HEAD~1
    fi
    if merge_base="$(git merge-base "$base" HEAD 2>/dev/null)"; then
      base="$merge_base"
    elif git rev-parse --verify -q HEAD~1 >/dev/null; then
      echo "check.sh: no merge-base with $base (force-push/shallow clone?); using HEAD~1"
      base="$(git rev-parse HEAD~1)"
    else
      echo "check.sh: single-commit history; checking all tracked C++ files"
      base="$(git hash-object -t tree /dev/null)"
    fi
    mapfile -t changed < <(
      git diff --name-only --diff-filter=ACMR "$base" HEAD -- \
        '*.cc' '*.cpp' '*.cxx' '*.h' '*.hpp' | grep -v '^tools/lint/testdata/' || true)
    if [ "${#changed[@]}" -eq 0 ]; then
      echo "check.sh: no C++ files changed vs $base"
    else
      clang-format --dry-run -Werror "${changed[@]}"
    fi
    ;;
  fuzz)
    cmake -B build -S .
    cmake --build build -j "$jobs" --target mrp_fuzz
    artifacts="${FUZZ_ARTIFACT_DIR:-build/fuzz-artifacts}"
    mkdir -p "$artifacts"
    ./build/tools/fuzz/mrp_fuzz --self-check --artifact-dir "$artifacts"
    ./build/tools/fuzz/mrp_fuzz --seeds "${FUZZ_SEEDS:-25}" \
      --start-seed "${FUZZ_START_SEED:-0}" --artifact-dir "$artifacts"
    ;;
  perf)
    cmake -B build -S .
    cmake --build build -j "$jobs" --target perf_suite
    python3 tools/perf/compare.py --self-test
    ./build/bench/perf_suite --quick --out build/BENCH_core.candidate.json
    # Quick mode is noisy; the local gate mirrors CI's lenient threshold.
    python3 tools/perf/compare.py --baseline BENCH_core.json \
      --candidate build/BENCH_core.candidate.json \
      --threshold "${PERF_THRESHOLD:-0.35}"
    ;;
esac

echo "check.sh: $mode OK"
