// Figure 5: scalability with the number of partitions when every
// learner subscribes to exactly ONE group. Four panels in the paper
// (throughput in Gbps, throughput in msg/s, latency, CPU of the most
// loaded node), five systems:
//
//  * RAM  M-RP : In-memory Multi-Ring Paxos, P rings x 2 acceptors —
//                scales linearly, >5 Gbps at 8 rings;
//  * DISK M-RP : Recoverable Multi-Ring Paxos — linear, ~3 Gbps at 8;
//  * Ring Paxos: one ring ordering all P groups — flat (~0.7 Gbps);
//  * Spread    : P Totem daemons / P groups, 16 kB messages — flat;
//  * LCR       : ring of 2..16 nodes, 32 kB messages — flat near link
//                speed, no group abstraction.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/lcr.h"
#include "baselines/totem.h"
#include "bench/bench_common.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT
using multiring::DeploymentOptions;
using multiring::SimDeployment;

struct Row {
  const char* system;
  int x;  // partitions / daemons / nodes
  Measurement m;
};

void Print(const Row& r) {
  std::printf("%-12s %6d %10.2f %10.0f %12.2f %10.1f\n", r.system, r.x,
              r.m.mbps / 1000.0, r.m.msg_per_s, r.m.latency_ms, r.m.max_cpu * 100);
}

// ---- Multi-Ring Paxos, one single-group learner per ring ----
// When `obs` is non-null this run additionally dumps its metrics
// snapshot (the registry dies with the deployment, so dump here).
Measurement RunMultiRing(int partitions, bool disk, int clients_per_ring,
                         Duration warm, Duration measure,
                         const Observability* obs = nullptr) {
  DeploymentOptions opts;
  opts.n_rings = partitions;
  opts.disk = disk;
  opts.lambda_per_sec = 9000;
  opts.delta = Millis(1);
  SimDeployment d(opts);
  std::vector<ringpaxos::RingLearner*> learners;
  for (int r = 0; r < partitions; ++r) {
    learners.push_back(d.AddRingLearner(r, /*acks=*/true));
    AddClosedLoopClients(d, r, clients_per_ring, 2, 8 * 1024);
  }
  d.Start();
  d.RunFor(warm);
  for (auto* l : learners) {
    l->delivered().TakeWindow();
    l->latency().Reset();
  }
  for (int r = 0; r < partitions; ++r) d.coordinator_node(r)->TakeCpuUtilisation();
  d.RunFor(measure);

  Measurement m;
  Histogram lat;
  for (auto* l : learners) {
    const auto w = l->delivered().TakeWindow();
    m.mbps += w.Mbps(measure);
    m.msg_per_s += w.MsgPerSec(measure);
    lat.Merge(l->latency());
  }
  m.latency_ms = Summarize(lat).trimmed_mean_ms;
  for (int r = 0; r < partitions; ++r) {
    m.max_cpu = std::max(m.max_cpu, d.coordinator_node(r)->TakeCpuUtilisation());
  }
  if (obs != nullptr) DumpMetrics(*obs, d);
  return m;
}

// ---- Single Ring Paxos ordering all P groups (as in Figure 2) ----
Measurement RunSingleRing(int /*partitions*/, Duration warm, Duration measure) {
  DeploymentOptions opts;
  opts.lambda_per_sec = 0;
  SimDeployment d(opts);
  auto* learner = d.AddRingLearner(0, /*acks=*/true);
  AddClosedLoopClients(d, 0, 48, 2, 8 * 1024);
  d.Start();
  d.RunFor(warm);
  learner->delivered().TakeWindow();
  learner->latency().Reset();
  d.coordinator_node(0)->TakeCpuUtilisation();
  d.RunFor(measure);
  Measurement m;
  const auto w = learner->delivered().TakeWindow();
  m.mbps = w.Mbps(measure);
  m.msg_per_s = w.MsgPerSec(measure);
  m.latency_ms = Summarize(learner->latency()).trimmed_mean_ms;
  m.max_cpu = d.coordinator_node(0)->TakeCpuUtilisation();
  return m;
}

// ---- Spread-like Totem daemons, 16 kB messages ----
Measurement RunSpread(int daemons, Duration warm, Duration measure) {
  sim::NetConfig net;
  // Userspace daemon overhead: higher per-message and per-byte CPU cost
  // than the kernel-path protocols (see DESIGN.md substitutions).
  net.default_spec.cpu_fixed_recv = Micros(25);
  net.default_spec.cpu_fixed_send = Micros(25);
  net.default_spec.cpu_per_byte_recv_ns = 7.5;
  net.default_spec.cpu_per_byte_send_ns = 7.5;
  sim::SimNetwork simnet(net);

  baselines::TotemConfig tc;
  tc.data_channel = 100;
  tc.max_burst = 16;
  std::vector<sim::SimNode*> daemon_nodes;
  for (int i = 0; i < daemons; ++i) {
    auto& node = simnet.AddNode();
    tc.daemons.push_back(node.self());
    daemon_nodes.push_back(&node);
    simnet.Subscribe(node.self(), tc.data_channel);
  }
  std::vector<baselines::TotemClient*> clients;
  std::vector<sim::SimNode*> client_nodes;
  for (int i = 0; i < daemons; ++i) {
    for (int c = 0; c < 4; ++c) {
      sim::NodeSpec spec;  // clients use the default cost model
      spec.infinite_cpu = true;
      auto& cnode = simnet.AddNode(spec);
      baselines::TotemClient::Config cc;
      cc.daemon = tc.daemons[i];
      cc.group = static_cast<GroupId>(i);
      cc.payload_size = 16 * 1024;
      cc.window = 4;
      auto client = std::make_unique<baselines::TotemClient>(cc);
      clients.push_back(client.get());
      cnode.BindProtocol(std::move(client));
      client_nodes.push_back(&cnode);
    }
  }
  for (int i = 0; i < daemons; ++i) {
    std::vector<baselines::TotemDaemon::ClientSub> subs;
    for (int c = 0; c < 4; ++c) {
      subs.push_back({client_nodes[static_cast<std::size_t>(i * 4 + c)]->self(),
                      {static_cast<GroupId>(i)}});
    }
    daemon_nodes[i]->BindProtocol(std::make_unique<baselines::TotemDaemon>(tc, subs));
  }
  simnet.StartAll();
  simnet.RunFor(warm);
  for (auto* c : clients) {
    c->delivered().TakeWindow();
    c->latency().Reset();
  }
  for (auto* dn : daemon_nodes) dn->TakeCpuUtilisation();
  simnet.RunFor(measure);

  Measurement m;
  Histogram lat;
  for (auto* c : clients) {
    const auto w = c->delivered().TakeWindow();
    m.mbps += w.Mbps(measure);
    m.msg_per_s += w.MsgPerSec(measure);
    lat.Merge(c->latency());
  }
  m.latency_ms = Summarize(lat).trimmed_mean_ms;
  for (auto* dn : daemon_nodes) {
    m.max_cpu = std::max(m.max_cpu, dn->TakeCpuUtilisation());
  }
  return m;
}

// ---- LCR ring of n nodes, 32 kB messages ----
Measurement RunLcr(int nodes, Duration warm, Duration measure) {
  sim::SimNetwork simnet;
  baselines::LcrConfig lc;
  lc.window = 16;
  lc.payload_size = 32 * 1024;
  std::vector<sim::SimNode*> ring_nodes;
  for (int i = 0; i < nodes; ++i) {
    auto& node = simnet.AddNode();
    lc.ring.push_back(node.self());
    ring_nodes.push_back(&node);
  }
  std::vector<baselines::LcrNode*> protos;
  for (int i = 0; i < nodes; ++i) {
    auto proto = std::make_unique<baselines::LcrNode>(lc);
    protos.push_back(proto.get());
    ring_nodes[i]->BindProtocol(std::move(proto));
  }
  simnet.StartAll();
  simnet.RunFor(warm);
  for (auto* p : protos) {
    p->delivered().TakeWindow();
    p->latency().Reset();
  }
  for (auto* n : ring_nodes) n->TakeCpuUtilisation();
  simnet.RunFor(measure);

  // Aggregate = what ONE node delivers (every node delivers everything).
  Measurement m;
  const auto w = protos[0]->delivered().TakeWindow();
  m.mbps = w.Mbps(measure);
  m.msg_per_s = w.MsgPerSec(measure);
  m.latency_ms = Summarize(protos[0]->latency()).trimmed_mean_ms;
  for (auto* n : ring_nodes) m.max_cpu = std::max(m.max_cpu, n->TakeCpuUtilisation());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const Observability obs = SetupObservability(argc, argv);
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(4);
  const std::vector<int> parts = quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> lcr_nodes = quick ? std::vector<int>{2, 8} : std::vector<int>{2, 4, 8, 16};

  PrintHeader("Figure 5 - scalability, each learner subscribes to ONE group",
              "Multi-Ring Paxos scales linearly with rings; Spread, single\n"
              "Ring Paxos and LCR are flat. (Gbps, msg/s, latency, max CPU.)");
  std::printf("%-12s %6s %10s %10s %12s %10s\n", "system", "x", "Gbps", "msg/s",
              "latency(ms)", "maxCPU%");

  for (int p : parts) {
    // The largest RAM run also serves the --trace/--metrics dump.
    const Observability* o = (p == parts.back()) ? &obs : nullptr;
    Print({"RAM M-RP", p, RunMultiRing(p, false, 48, warm, measure, o)});
  }
  std::printf("\n");
  for (int p : parts) Print({"DISK M-RP", p, RunMultiRing(p, true, 24, warm, measure)});
  std::printf("\n");
  for (int p : parts) Print({"Ring Paxos", p, RunSingleRing(p, warm, measure)});
  std::printf("\n");
  for (int p : parts) Print({"Spread", p, RunSpread(p, warm, measure)});
  std::printf("\n");
  for (int n : lcr_nodes) Print({"LCR", n, RunLcr(n, warm, measure)});

  std::printf("\nExpected shape: RAM M-RP ~0.7 Gbps x rings (>5 Gbps at 8); DISK\n"
              "M-RP ~0.4 Gbps x rings (~3 Gbps at 8); the other systems flat.\n");
  DumpTrace(obs);
  return 0;
}
