// Figure 11: the effect of lambda when the submission rates oscillate
// over time (sinusoidal, +-40%) around means where ring 1 is twice
// ring 2. The oscillation peaks push the fast ring's instantaneous
// consensus rate above 9000/s, so only lambda = 12000/s keeps the
// learner stable — skipping up to 12000 instances per second, i.e. up
// to ~750 Mbps of logical stream, matching the paper's observation.
#include "bench/lambda_common.h"

int main(int argc, char** argv) {
  using namespace mrp;         // NOLINT
  using namespace mrp::bench;  // NOLINT

  const bool quick = QuickMode(argc, argv);
  LambdaScenario sc;
  sc.ring1 = Steps({100, 200, 300, 400, 500});
  sc.ring2 = Steps({50, 100, 150, 200, 250});
  sc.osc_amplitude = 0.4;
  sc.osc_period = Seconds(10);
  sc.max_buffer_msgs = 20000;
  sc.total = quick ? Seconds(40) : Seconds(100);

  PrintHeader("Figure 11 - lambda with oscillating rates (avg 2:1)",
              "Same averages as Figure 10 but rates oscillate +-40% with a\n"
              "10 s period; only lambda=12000/s absorbs the peaks.");
  for (double lambda : {5000.0, 9000.0, 12000.0}) RunLambdaSeries(lambda, sc, CsvDir(argc, argv), "fig11");
  std::printf("Expected shape: 5000 overflows mid-run, 9000 overflows at the\n"
              "last step's peaks, 12000 stays stable.\n");
  return 0;
}
