// Extension benchmark (beyond the paper's 8 rings): does the linear
// scaling of In-memory Multi-Ring Paxos continue at 12 and 16 rings?
// The paper's claim is that composition scales with an "unbounded"
// number of rings as long as no shared resource saturates; with
// one-group-per-learner subscriptions nothing is shared, so throughput
// should stay ~0.69 Gbps x rings.
//
// Also sweeps the skip_resync extension under a rate burst to quantify
// the standing-buffer difference (see docs/PROTOCOL.md §3).
#include <cstdio>
#include <vector>

#include "baselines/mencius.h"
#include "bench/bench_common.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT
using multiring::DeploymentOptions;
using multiring::SimDeployment;

void ScalingSweep(bool quick) {
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(3);
  std::printf("\n[1] linear scaling continued (RAM M-RP, one learner/group)\n");
  std::printf("%-8s %10s %12s %14s\n", "rings", "Gbps", "Gbps/ring", "maxCoordCPU%");
  const std::vector<int> sweep = quick ? std::vector<int>{4, 12}
                                       : std::vector<int>{8, 12, 16};
  for (int rings : sweep) {
    DeploymentOptions opts;
    opts.n_rings = rings;
    opts.lambda_per_sec = 9000;
    SimDeployment d(opts);
    std::vector<ringpaxos::RingLearner*> learners;
    for (int r = 0; r < rings; ++r) {
      learners.push_back(d.AddRingLearner(r, true));
      AddClosedLoopClients(d, r, 48, 2, 8 * 1024);
    }
    d.Start();
    d.RunFor(warm);
    for (auto* l : learners) l->delivered().TakeWindow();
    for (int r = 0; r < rings; ++r) d.coordinator_node(r)->TakeCpuUtilisation();
    d.RunFor(measure);
    double gbps = 0;
    for (auto* l : learners) gbps += l->delivered().TakeWindow().Mbps(measure) / 1000;
    double cpu = 0;
    for (int r = 0; r < rings; ++r) {
      cpu = std::max(cpu, d.coordinator_node(r)->TakeCpuUtilisation());
    }
    std::printf("%-8d %10.2f %12.3f %14.1f\n", rings, gbps, gbps / rings, cpu * 100);
  }
}

void ResyncSweep(bool quick) {
  std::printf("\n[2] skip_resync: standing buffer after a burst above lambda\n");
  std::printf("%-10s %18s %14s\n", "mode", "buffered(msgs)", "delivered");
  for (bool resync : {false, true}) {
    DeploymentOptions opts;
    opts.n_rings = 2;
    opts.lambda_per_sec = 3000;
    opts.skip_resync = resync;
    SimDeployment d(opts);
    auto* learner = d.AddMergeLearner({0, 1});
    AddOpenLoopClient(d, 0, {{Seconds(0), 1000.0}}, 8 * 1024);
    AddOpenLoopClient(d, 1,
                      {{Seconds(0), 1000.0}, {Seconds(2), 5000.0}, {Seconds(4), 1000.0}},
                      8 * 1024);
    d.Start();
    d.RunFor(quick ? Seconds(6) : Seconds(10));
    std::printf("%-10s %18zu %14llu\n", resync ? "resync" : "paper",
                learner->buffered_msgs(),
                static_cast<unsigned long long>(learner->total_delivered()));
  }
}

// Mencius orders ONE total sequence across all servers: a partitioned
// service on top of it (selective delivery, as in Figure 2) cannot
// scale with partitions, while Multi-Ring Paxos gives each partition
// its own ring. Mencius appears in the paper's related work as the
// closest skip-instance design.
void MenciusComparison(bool quick) {
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(3);
  std::printf("\n[3] partitioned service: Mencius vs Multi-Ring Paxos\n");
  std::printf("%-12s %12s %14s\n", "system", "partitions", "total(Mbps)");
  for (int partitions : {1, 2, 4}) {
    // ---- Mencius: one server per partition, everyone orders all ----
    double mencius_mbps = 0;
    {
      sim::SimNetwork net;
      baselines::MenciusConfig mc;
      std::vector<sim::SimNode*> nodes;
      for (int i = 0; i < partitions; ++i) {
        auto& node = net.AddNode();
        mc.servers.push_back(node.self());
        nodes.push_back(&node);
        net.Subscribe(node.self(), mc.data_channel);
      }
      std::vector<baselines::MenciusServer*> servers;
      for (auto* node : nodes) {
        auto server = std::make_unique<baselines::MenciusServer>(mc);
        servers.push_back(server.get());
        node->BindProtocol(std::move(server));
      }
      // Open-loop clients per server, enough to saturate.
      std::vector<sim::SimNode*> clients;
      for (int i = 0; i < partitions; ++i) {
        for (int c = 0; c < 2; ++c) {
          sim::NodeSpec spec;
          spec.infinite_cpu = true;
          auto& cnode = net.AddNode(spec);
          clients.push_back(&cnode);
        }
      }
      net.StartAll();
      // Drive submissions: a fixed TOTAL offered load just under the
      // single-total-order capacity, split over the clients (open loop;
      // pushing far beyond capacity would only measure queue collapse).
      const double per_client_rate = 8000.0 / (2.0 * partitions);
      struct Driver final : Protocol {
        NodeId server;
        double rate = 1000;
        std::uint64_t seq = 0;
        void OnStart(Env& env) override { Arm(env); }
        void Arm(Env& env) {
          env.SetTimer(FromSeconds(env.rng().exponential(1.0 / rate)), [this, &env] {
            paxos::ClientMsg m;
            m.proposer = env.self();
            m.seq = ++seq;
            m.sent_at = env.now();
            m.payload_size = 8 * 1024;
            env.Send(server, MakeMessage<baselines::MenciusSubmit>(std::move(m)));
            Arm(env);
          });
        }
        void OnMessage(Env&, NodeId, const MessagePtr&) override {}
      };
      for (std::size_t c = 0; c < clients.size(); ++c) {
        auto driver = std::make_unique<Driver>();
        driver->server = mc.servers[c % mc.servers.size()];
        driver->rate = per_client_rate;
        clients[c]->BindProtocol(std::move(driver));
        clients[c]->Start();
      }
      net.RunFor(warm);
      servers[0]->delivered().TakeWindow();
      net.RunFor(measure);
      mencius_mbps = servers[0]->delivered().TakeWindow().Mbps(measure);
    }
    std::printf("%-12s %12d %14.1f\n", "Mencius", partitions, mencius_mbps);

    // ---- Multi-Ring Paxos, same partition count ----
    {
      DeploymentOptions opts;
      opts.n_rings = partitions;
      opts.lambda_per_sec = 9000;
      SimDeployment d(opts);
      std::vector<ringpaxos::RingLearner*> learners;
      for (int r = 0; r < partitions; ++r) {
        learners.push_back(d.AddRingLearner(r, true));
        AddClosedLoopClients(d, r, 48, 2, 8 * 1024);
      }
      d.Start();
      d.RunFor(warm);
      for (auto* l : learners) l->delivered().TakeWindow();
      d.RunFor(measure);
      double mbps = 0;
      for (auto* l : learners) mbps += l->delivered().TakeWindow().Mbps(measure);
      std::printf("%-12s %12d %14.1f\n", "M-RP", partitions, mbps);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  PrintHeader("Extension - scaling beyond 8 rings; skip_resync ablation",
              "Linear composition should continue as long as nothing is\n"
              "shared; skip_resync repays burst excursions above lambda.");
  ScalingSweep(quick);
  ResyncSweep(quick);
  MenciusComparison(quick);
  std::printf("\nExpected: ~0.69 Gbps/ring through 16 rings; 'paper' mode\n"
              "keeps a standing buffer after the burst, 'resync' drains it;\n"
              "Mencius (one total order) stays flat while M-RP scales.\n");
  return 0;
}
