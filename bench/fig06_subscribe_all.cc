// Figure 6: every learner subscribes to ALL groups. With one ring the
// bottleneck is the single Ring Paxos instance; as rings are added the
// aggregate saturates the learner's 1 GbE ingress link. In-memory needs
// 2 rings to reach the learner's capacity, recoverable needs 3 — the
// paper's demonstration that several "slow" broadcast protocols compose
// into one fast one.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT
using multiring::DeploymentOptions;
using multiring::SimDeployment;

Measurement RunPoint(int rings, bool disk, Duration warm, Duration measure) {
  DeploymentOptions opts;
  opts.n_rings = rings;
  opts.disk = disk;
  opts.lambda_per_sec = 9000;
  SimDeployment d(opts);

  std::vector<int> all;
  for (int r = 0; r < rings; ++r) all.push_back(r);
  auto* learner = d.AddMergeLearner(all, /*m=*/1, /*max_buffer=*/0,
                                    /*acks=*/true);
  // Enough closed-loop load per ring to drive each ring to its own
  // ceiling, so the learner's ingress link becomes the aggregate bound.
  for (int r = 0; r < rings; ++r) {
    AddClosedLoopClients(d, r, disk ? 64 : 96, 2, 8 * 1024);
  }
  d.Start();
  d.RunFor(warm);
  for (std::size_t g = 0; g < learner->group_count(); ++g) {
    learner->stats(g).delivered.TakeWindow();
    learner->stats(g).latency.Reset();
  }
  auto* lnode = d.learner_node(0);
  lnode->TakeCpuUtilisation();
  d.RunFor(measure);

  Measurement m;
  Histogram lat;
  for (std::size_t g = 0; g < learner->group_count(); ++g) {
    const auto w = learner->stats(g).delivered.TakeWindow();
    m.mbps += w.Mbps(measure);
    m.msg_per_s += w.MsgPerSec(measure);
    lat.Merge(learner->stats(g).latency);
  }
  m.latency_ms = Summarize(lat).trimmed_mean_ms;
  m.max_cpu = lnode->TakeCpuUtilisation();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(4);
  const std::vector<int> rings = quick ? std::vector<int>{1, 2, 4}
                                       : std::vector<int>{1, 2, 4, 8};

  PrintHeader("Figure 6 - ONE learner subscribes to ALL groups",
              "Aggregate delivery throughput at the learner caps at its 1 GbE\n"
              "ingress; in-memory saturates it with 2 rings, recoverable with 3.");
  std::printf("%-12s %6s %12s %10s %12s %12s\n", "mode", "rings", "tput(Mbps)",
              "msg/s", "latency(ms)", "learnerCPU%");
  for (bool disk : {false, true}) {
    for (int r : rings) {
      const auto m = RunPoint(r, disk, warm, measure);
      std::printf("%-12s %6d %12.1f %10.0f %12.2f %12.1f\n",
                  disk ? "Recoverable" : "In-memory", r, m.mbps, m.msg_per_s,
                  m.latency_ms, m.max_cpu * 100);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: rises with rings until ~0.9 Gbps (learner NIC),\n"
              "then flat; recoverable needs one more ring to reach the cap.\n");
  return 0;
}
