// Figure 12: the effect of discontinued communication (a coordinator
// failure) on a Multi-Ring Paxos learner. Two rings at ~4000 msg/s each
// (~500 Mbps delivered). At t = 20 s ring 1's coordinator is stopped;
// the learner keeps receiving from ring 2 but cannot run its
// deterministic merge, so DELIVERY throughput drops to zero, and ring
// 2's ingress decays because the stalled learner stops acknowledging
// and the windowed proposer throttles. At t = 23 s the coordinator
// resumes, notices no instances were decided during the outage, and
// proposes one bulk skip — the learner drains its buffer in a burst (the
// paper measures a momentary 4250 Mbps peak) and the system returns to
// steady state.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace mrp;         // NOLINT
  using namespace mrp::bench;  // NOLINT
  using multiring::DeploymentOptions;
  using multiring::SimDeployment;

  const bool quick = QuickMode(argc, argv);
  const Duration total = quick ? Seconds(30) : Seconds(40);
  const Duration down_at = Seconds(20);
  const Duration up_at = Seconds(23);

  DeploymentOptions opts;
  opts.n_rings = 2;
  opts.lambda_per_sec = 9000;
  opts.delta = Millis(1);
  // Figure 12 restarts the same coordinator; disable fail-over.
  opts.suspect_after = Seconds(600);
  SimDeployment d(opts);
  auto* learner = d.AddMergeLearner({0, 1}, 1, /*max_buffer=*/0,
                                    /*send_delivery_acks=*/true);
  for (int r = 0; r < 2; ++r) {
    ringpaxos::ProposerConfig pc;
    pc.schedule = {{Seconds(0), 4000.0}};
    pc.payload_size = 8 * 1024;
    // Windowed open loop: ~1.5 s of traffic may be unacknowledged; the
    // stalled learner therefore throttles the live ring.
    pc.max_outstanding = 6000;
    pc.retry_timeout = Seconds(1);
    d.AddProposer(r, pc);
  }
  d.Start();

  PrintHeader("Figure 12 - coordinator failure and restart",
              "Ring 1's coordinator pauses at t=20s and resumes at t=23s.\n"
              "Left: receiving throughput at the learner; right: delivery.");
  std::printf("%6s %8s %8s | %9s %9s %9s %10s\n", "t(s)", "rx1Mbps", "rx2Mbps",
              "del1Mbps", "del2Mbps", "delTotal", "buffered");

  bool downed = false, resumed = false;
  for (TimePoint t{0}; t < total; t += Seconds(1)) {
    if (!downed && t >= down_at) {
      d.coordinator_node(0)->SetDown(true);
      downed = true;
    }
    if (!resumed && t >= up_at) {
      d.coordinator_node(0)->SetDown(false);
      resumed = true;
    }
    d.RunFor(Seconds(1));
    double rx[2], del[2];
    for (std::size_t g = 0; g < 2; ++g) {
      rx[g] = learner->stats(g).received.TakeWindow().Mbps(Seconds(1));
      del[g] = learner->stats(g).delivered.TakeWindow().Mbps(Seconds(1));
    }
    std::printf("%6lld %8.1f %8.1f | %9.1f %9.1f %9.1f %10zu\n",
                static_cast<long long>((t + Seconds(1)).count() / 1000000000),
                rx[0], rx[1], del[0], del[1], del[0] + del[1],
                learner->buffered_msgs());
  }
  std::printf("\nExpected shape: at t=20s rx1 and ALL delivery drop to ~0 while\n"
              "rx2 decays (no acks -> throttling); at t=23s a catch-up skip\n"
              "drains the buffer (delivery spike well above steady state),\n"
              "then ~500 Mbps steady state resumes.\n"
              "\nNote: a small standing buffer remains after recovery. The live\n"
              "ring's retransmission wave during the outage exceeded lambda,\n"
              "advancing its logical schedule ahead of the other ring's for\n"
              "good — Algorithm 1 line 19 (prev_k <- k) never repays rate\n"
              "excursions above lambda. Sizing lambda for worst-case bursts\n"
              "avoids this.\n");
  return 0;
}
