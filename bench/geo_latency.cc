// Geo benchmark (Stretching M-RP territory, beyond the paper's LAN
// figures): Multi-Ring Paxos deployed over a WAN topology
// (sim/topology.h). Two experiments:
//
//  A. Per-site delivery-latency CDFs. Three sites in a full mesh, one
//     ring per site, a merge learner in every site subscribed to all
//     groups. Each site's latency distribution separates by its
//     distance to the remote coordinators; a latency-compensated
//     learner (hold-until sent_at + D) collapses the inter-site skew.
//
//  B. Closed-loop throughput vs inter-site RTT. Two sites, one ring
//     each, delivery-acked closed-loop clients driving a merge learner
//     that spans both: throughput falls as the configured RTT grows,
//     the WAN cost the topology model is meant to expose.
//
// --quick runs ~2 simulated seconds total (the CI smoke budget).
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/topology.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT
using multiring::DeploymentOptions;
using multiring::MergeLearner;
using multiring::SimDeployment;

sim::LinkSpec WanLink(Duration latency) {
  sim::LinkSpec s;
  s.latency = latency;
  s.jitter = Micros(200);  // WAN paths jitter more than a LAN switch
  return s;
}

void PrintCdfRow(const char* site, const char* kind,
                 const MergeLearner& l) {
  Histogram all;
  for (std::size_t g = 0; g < l.group_count(); ++g) {
    all.Merge(const_cast<MergeLearner&>(l).stats(g).latency);
  }
  const bench::LatencySummary ls = bench::Summarize(all);
  std::printf("  %-6s %-12s %8" PRIu64 "  %8.2f %8.2f %8.2f %8.2f\n", site,
              kind, ls.count, ls.p10_ms, ls.p50_ms, ls.p90_ms, ls.p99_ms);
}

void RunPerSiteCdfs(bool quick, const char* csv_dir) {
  // Asymmetric triangle: eu-us 10 ms, us-asia 25 ms, eu-asia 40 ms.
  // Shortest path eu->asia is 35 ms via us, so the routing layer shows
  // up in asia's numbers, not just the raw link table.
  const std::vector<std::string> names = {"eu", "us", "asia"};
  DeploymentOptions opts;
  opts.n_rings = 3;
  opts.net.seed = 1;
  sim::Topology topo;
  for (const auto& n : names) topo.AddSite(n);
  topo.Connect(0, 1, WanLink(Millis(10)));
  topo.Connect(1, 2, WanLink(Millis(25)));
  topo.Connect(0, 2, WanLink(Millis(40)));
  opts.net.topology = topo;
  opts.ring_sites = {0, 1, 2};
  SimDeployment d(opts);

  // Per site: a learner following only ring 0 (group latency tracks
  // the site's distance to eu), plus all-group learners with and
  // without latency compensation (target above the 35 ms diameter).
  std::vector<MergeLearner*> ring0, plain, comp;
  for (sim::SiteId s = 0; s < 3; ++s) {
    SimDeployment::LearnerSpec ls;
    ls.site = s;
    ring0.push_back(d.AddMergeLearner({0}, ls));
    plain.push_back(d.AddMergeLearner({0, 1, 2}, ls));
    ls.latency_compensation = Millis(45);
    comp.push_back(d.AddMergeLearner({0, 1, 2}, ls));
  }
  for (int r = 0; r < 3; ++r) {
    AddOpenLoopClient(d, r, {{Seconds(0), 400}}, 1024);
  }
  d.Start();
  d.RunFor(quick ? Seconds(1) : Seconds(10));

  std::printf("\nA. Per-site delivery latency (eu-us 10 ms, us-asia 25 ms, "
              "eu-asia 40 ms)\n");
  std::printf("  %-6s %-12s %8s  %8s %8s %8s %8s\n", "site", "learner",
              "msgs", "p10ms", "p50ms", "p90ms", "p99ms");
  for (sim::SiteId s = 0; s < 3; ++s) {
    PrintCdfRow(names[s].c_str(), "ring0-only", *ring0[s]);
    PrintCdfRow(names[s].c_str(), "all-groups", *plain[s]);
    PrintCdfRow(names[s].c_str(), "comp-45ms", *comp[s]);
  }
  std::printf("  Expected shape: ring0-only p50 tracks each site's distance\n"
              "  to eu (~LAN / ~10 ms / ~35 ms via us); all-groups p50 is\n"
              "  gated by each site's farthest group; comp-45ms aligns all\n"
              "  sites near the 45 ms target.\n");

  if (csv_dir != nullptr) {
    const std::string path = std::string(csv_dir) + "/geo_cdf.csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "site,learner,quantile,latency_ms\n");
      for (sim::SiteId s = 0; s < 3; ++s) {
        for (double q = 0.05; q <= 0.99; q += 0.05) {
          Histogram hp, hc;
          for (std::size_t g = 0; g < 3; ++g) {
            hp.Merge(plain[s]->stats(g).latency);
            hc.Merge(comp[s]->stats(g).latency);
          }
          std::fprintf(f, "%s,natural,%.2f,%.3f\n", names[s].c_str(), q,
                       hp.Quantile(q) / 1e6);
          std::fprintf(f, "%s,comp,%.2f,%.3f\n", names[s].c_str(), q,
                       hc.Quantile(q) / 1e6);
        }
      }
      std::fclose(f);
      std::printf("  csv -> %s\n", path.c_str());
    }
  }
}

void RunThroughputVsRtt(bool quick, const char* csv_dir) {
  std::printf("\nB. Closed-loop throughput vs inter-site RTT (2 sites, "
              "1 ring each)\n");
  std::printf("  %8s %10s %10s %10s\n", "rtt_ms", "msg/s", "mbps",
              "lat_ms");
  std::FILE* f = nullptr;
  if (csv_dir != nullptr) {
    const std::string path = std::string(csv_dir) + "/geo_rtt.csv";
    f = std::fopen(path.c_str(), "w");
    if (f != nullptr) std::fprintf(f, "rtt_ms,msg_per_s,mbps,latency_ms\n");
  }
  const std::vector<double> rtts =
      quick ? std::vector<double>{10, 50} : std::vector<double>{2,  10, 20,
                                                                50, 100};
  const Duration run = quick ? Millis(500) : Seconds(5);
  constexpr std::uint32_t kPayload = 1024;
  for (double rtt_ms : rtts) {
    DeploymentOptions opts;
    opts.n_rings = 2;
    opts.net.seed = 1;
    sim::Topology topo;
    const sim::SiteId west = topo.AddSite("west");
    topo.Connect(west, topo.AddSite("east"),
                 WanLink(Millis(static_cast<std::int64_t>(rtt_ms)) / 2));
    opts.net.topology = topo;
    opts.ring_sites = {0, 1};
    SimDeployment d(opts);
    SimDeployment::LearnerSpec ls;
    ls.send_delivery_acks = true;
    auto* learner = d.AddMergeLearner({0, 1}, ls);
    for (int r = 0; r < 2; ++r) {
      ringpaxos::ProposerConfig pc;
      pc.max_outstanding = 16;
      pc.payload_size = kPayload;
      d.AddProposer(r, pc);
    }
    d.Start();
    d.RunFor(run);
    const double secs = ToSeconds(run);
    const double msg_s =
        static_cast<double>(learner->total_delivered()) / secs;
    const double mbps = msg_s * kPayload * 8.0 / 1e6;
    Histogram all;
    for (std::size_t g = 0; g < learner->group_count(); ++g) {
      all.Merge(learner->stats(g).latency);
    }
    const double lat_ms = bench::Summarize(all).trimmed_mean_ms;
    std::printf("  %8.0f %10.0f %10.2f %10.2f\n", rtt_ms, msg_s, mbps,
                lat_ms);
    if (f != nullptr) {
      std::fprintf(f, "%.0f,%.0f,%.3f,%.3f\n", rtt_ms, msg_s, mbps, lat_ms);
    }
  }
  if (f != nullptr) std::fclose(f);
  std::printf("  Expected shape: msg/s falls roughly with 1/RTT (the ack\n"
              "  loop crosses the WAN); latency tracks the configured RTT.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  PrintHeader("Geo: WAN topology latency/throughput",
              "Per-site delivery CDFs over a 3-site mesh, and closed-loop\n"
              "throughput as the inter-site RTT grows (docs/TOPOLOGY.md).");
  RunPerSiteCdfs(quick, CsvDir(argc, argv));
  RunThroughputVsRtt(quick, CsvDir(argc, argv));
  return 0;
}
