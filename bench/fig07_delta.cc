// Figure 7: the effect of Delta (the coordinator's skip-sampling
// interval) on Multi-Ring Paxos. Two rings, one learner subscribed to
// both, equal constant Poisson rates. Large Delta means skips arrive
// late, so at low load the learner waits on the slower ring and latency
// is high; as the real traffic rate approaches lambda fewer skips are
// needed and the Delta penalty fades. Maximum throughput and coordinator
// CPU are essentially unaffected by Delta.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT
using multiring::DeploymentOptions;
using multiring::SimDeployment;

struct Point {
  double total_mbps;
  double latency_ms;
  double coord_cpu;
};

Point RunPoint(Duration delta, double per_ring_rate, Duration warm, Duration measure) {
  DeploymentOptions opts;
  opts.n_rings = 2;
  opts.lambda_per_sec = 9000;
  opts.delta = delta;
  SimDeployment d(opts);
  auto* learner = d.AddMergeLearner({0, 1});
  for (int r = 0; r < 2; ++r) {
    AddOpenLoopClient(d, r, {{Seconds(0), per_ring_rate}}, 8 * 1024);
  }
  d.Start();
  d.RunFor(warm);
  for (std::size_t g = 0; g < 2; ++g) {
    learner->stats(g).delivered.TakeWindow();
    learner->stats(g).latency.Reset();
  }
  d.coordinator_node(0)->TakeCpuUtilisation();
  d.RunFor(measure);

  Point p{0, 0, 0};
  Histogram lat;
  for (std::size_t g = 0; g < 2; ++g) {
    p.total_mbps += learner->stats(g).delivered.TakeWindow().Mbps(measure);
    lat.Merge(learner->stats(g).latency);
  }
  p.latency_ms = Summarize(lat).trimmed_mean_ms;
  p.coord_cpu = d.coordinator_node(0)->TakeCpuUtilisation();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(4);
  // Offered load per ring, msg/s of 8 kB (total is twice this).
  const std::vector<double> rates =
      quick ? std::vector<double>{500, 4000}
            : std::vector<double>{250, 500, 1000, 2000, 3000, 4000, 5000, 6000};

  PrintHeader("Figure 7 - the effect of Delta",
              "2 rings, 1 learner in both, equal Poisson rates. Large Delta =>\n"
              "high latency at low load; throughput and coordinator CPU "
              "unaffected.");
  std::printf("%-10s %14s %12s %10s\n", "Delta", "total(Mbps)", "latency(ms)",
              "coordCPU%");
  for (Duration delta : {Millis(1), Millis(10), Millis(100)}) {
    for (double rate : rates) {
      const auto p = RunPoint(delta, rate, warm, measure);
      std::printf("%-10s %14.1f %12.2f %10.1f\n",
                  (std::to_string(delta.count() / 1000000) + "ms").c_str(),
                  p.total_mbps, p.latency_ms, p.coord_cpu * 100);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: Delta=100ms starts with the highest latency and\n"
              "improves with load; Delta=1ms is flat-low until saturation.\n");
  return 0;
}
