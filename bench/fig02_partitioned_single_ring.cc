// Figure 2: a partitioned "dummy" service running over a SINGLE
// In-memory Ring Paxos instance that orders all messages and delivers
// selectively. All requests are single-partition and evenly spread. The
// paper's point: the overall service throughput does NOT grow with the
// number of partitions — the one ring is the bottleneck, so each
// partition simply gets a 1/P share.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT
using multiring::DeploymentOptions;
using multiring::SimDeployment;
using ringpaxos::RingLearner;

struct Result {
  double total_mbps = 0;
  double per_partition_mbps = 0;
  double latency_ms = 0;
};

Result RunPartitions(int partitions, Duration warm, Duration measure) {
  DeploymentOptions opts;
  opts.lambda_per_sec = 0;
  SimDeployment d(opts);  // ONE ring

  // One learner (replica) per partition; each subscribes to the ring's
  // data channel, receives everything, and discards foreign partitions
  // (dummy service: delivered messages of its own partition are simply
  // counted).
  struct PartitionLearner {
    RingLearner* learner = nullptr;
    std::uint64_t my_bytes = 0;
    std::uint64_t my_msgs = 0;
  };
  std::vector<std::unique_ptr<PartitionLearner>> parts;
  for (int p = 0; p < partitions; ++p) {
    auto pl = std::make_unique<PartitionLearner>();
    auto* raw = pl.get();
    auto& node = d.net().AddNode();
    RingLearner::Options lo;
    lo.learner.ring = d.ring(0);
    lo.send_delivery_acks = (p == 0);  // one acker is enough for flow control
    // Requests are evenly spread: proposer c belongs to partition
    // c % partitions. The learner discards foreign-partition messages
    // (they still consumed its bandwidth and CPU — the paper's point).
    lo.on_deliver = [raw, p, partitions](const paxos::ClientMsg& m) {
      if (static_cast<int>(m.proposer) % partitions == p) {
        raw->my_bytes += m.payload_size;
        ++raw->my_msgs;
      }
    };
    auto learner = std::make_unique<RingLearner>(std::move(lo));
    raw->learner = learner.get();
    node.BindProtocol(std::move(learner));
    d.net().Subscribe(node.self(), d.ring(0).data_channel);
    d.net().Subscribe(node.self(), d.ring(0).control_channel);
    parts.push_back(std::move(pl));
  }

  // 48 closed-loop clients in total, evenly spread over partitions
  // (proposer c belongs to partition c % partitions).
  const int clients_total = 48;
  AddClosedLoopClients(d, 0, clients_total, /*window=*/2, /*payload=*/8 * 1024);

  d.Start();
  d.RunFor(warm);
  for (auto& pl : parts) {
    pl->my_bytes = 0;
    pl->my_msgs = 0;
    pl->learner->latency().Reset();
  }
  d.RunFor(measure);

  Result r;
  std::uint64_t total_bytes = 0;
  for (auto& pl : parts) total_bytes += pl->my_bytes;
  r.total_mbps = static_cast<double>(total_bytes) * 8 / ToSeconds(measure) / 1e6;
  r.per_partition_mbps = r.total_mbps / partitions;
  r.latency_ms = Summarize(parts[0]->learner->latency()).trimmed_mean_ms;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(4);

  PrintHeader("Figure 2 - partitioned dummy service over ONE Ring Paxos",
              "Overall service throughput vs number of partitions: flat,\n"
              "because the single ring orders everything.");

  std::printf("%-12s %14s %18s\n", "partitions", "overall(Mbps)", "per-partition(Mbps)");
  for (int p : {1, 2, 4, 8}) {
    const auto r = RunPartitions(p, warm, measure);
    std::printf("%-12d %14.1f %18.1f\n", p, r.total_mbps, r.per_partition_mbps);
  }
  std::printf("\nExpected shape: overall throughput approximately constant (~700\n"
              "Mbps); the per-partition share shrinks as 1/P.\n");
  return 0;
}
