// Shared time-series runner for Figures 9-11 (the effect of lambda under
// different rate profiles). Two rings, one learner subscribed to both,
// open-loop Poisson proposers with step schedules; per-second samples of
// multicast rates, delivery latency and learner buffering.
#pragma once

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace mrp::bench {

struct LambdaScenario {
  // Per-ring rate schedules, msg/s of 8 kB payloads.
  std::vector<ringpaxos::ProposerConfig::RatePoint> ring1;
  std::vector<ringpaxos::ProposerConfig::RatePoint> ring2;
  double osc_amplitude = 0;       // applied to both rings
  Duration osc_period = Seconds(10);
  std::size_t max_buffer_msgs = 20000;  // learner halt threshold
  Duration total = Seconds(100);
  Duration sample = Seconds(1);
  // The paper's proposers send at constant rates from real machines:
  // arrivals are evenly spaced (not Poisson) but the two senders' clocks
  // drift slightly apart. This skew is what makes the rings go
  // "out-of-sync" at the learner when skips are disabled.
  bool poisson = false;
  double clock_skew = 0.002;  // ring1 +0.2%, ring2 -0.2%
};

inline void RunLambdaSeries(double lambda, const LambdaScenario& sc,
                            const char* csv_dir = nullptr,
                            const char* csv_tag = nullptr) {
  multiring::DeploymentOptions opts;
  opts.n_rings = 2;
  opts.lambda_per_sec = lambda;
  opts.delta = Millis(1);
  multiring::SimDeployment d(opts);
  auto* learner = d.AddMergeLearner({0, 1}, /*m=*/1, sc.max_buffer_msgs);
  for (int r = 0; r < 2; ++r) {
    ringpaxos::ProposerConfig pc;
    pc.schedule = r == 0 ? sc.ring1 : sc.ring2;
    const double skew = 1.0 + (r == 0 ? sc.clock_skew : -sc.clock_skew);
    for (auto& pt : pc.schedule) pt.rate *= skew;
    pc.payload_size = 8 * 1024;
    pc.poisson = sc.poisson;
    pc.osc_amplitude = sc.osc_amplitude;
    pc.osc_period = sc.osc_period;
    d.AddProposer(r, pc);
  }
  d.Start();

  std::printf("lambda=%.0f/s\n", lambda);
  std::printf("%6s %10s %10s %10s %12s %10s %7s\n", "t(s)", "ring1Mbps",
              "ring2Mbps", "totalMbps", "latency(ms)", "buffered", "halted");
  std::ofstream csv;
  if (csv_dir != nullptr && csv_tag != nullptr) {
    csv.open(std::string(csv_dir) + "/" + csv_tag + "_lambda" +
             std::to_string(static_cast<long long>(lambda)) + ".csv");
    csv << "t_s,ring1_mbps,ring2_mbps,total_mbps,latency_ms,buffered,halted\n";
  }
  for (TimePoint t{0}; t < sc.total; t += sc.sample) {
    d.RunFor(sc.sample);
    double mbps[2];
    Histogram lat;
    for (std::size_t g = 0; g < 2; ++g) {
      mbps[g] = learner->stats(g).delivered.TakeWindow().Mbps(sc.sample);
      lat.Merge(learner->stats(g).latency);
      learner->stats(g).latency.Reset();
    }
    const auto secs = (t + sc.sample).count() / 1'000'000'000;
    const LatencySummary ls = Summarize(lat);
    if (csv.is_open()) {
      csv << secs << ',' << mbps[0] << ',' << mbps[1] << ','
          << mbps[0] + mbps[1] << ',' << ls.trimmed_mean_ms << ','
          << learner->buffered_msgs() << ',' << (learner->halted() ? 1 : 0)
          << '\n';
    }
    // Print one row every 2 simulated seconds to keep the table readable.
    if (secs % 2 == 0) {
      std::printf("%6lld %10.1f %10.1f %10.1f %12.2f %10zu %7s\n",
                  static_cast<long long>(secs), mbps[0], mbps[1],
                  mbps[0] + mbps[1], ls.trimmed_mean_ms,
                  learner->buffered_msgs(), learner->halted() ? "HALT" : "-");
    }
  }
  std::printf("\n");
}

// Rate steps every 20 s (the paper raises the multicast rate at 20 s
// intervals). `mbps` are per-ring application rates.
inline std::vector<ringpaxos::ProposerConfig::RatePoint> Steps(
    std::vector<double> mbps) {
  std::vector<ringpaxos::ProposerConfig::RatePoint> out;
  TimePoint t{0};
  for (double m : mbps) {
    out.push_back({t, m * 1e6 / 8 / 8192});  // Mbps -> 8 kB msg/s
    t += Seconds(20);
  }
  return out;
}

}  // namespace mrp::bench
