// Figure 9: the effect of lambda when both rings multicast at the same
// constant rate, raised every 20 s. Even with equal rates, Poisson
// jitter makes the two decision streams drift out of sync at the
// learner; without skips (lambda = 0) the buffering never recovers and
// latency keeps growing. lambda = 1000/s holds until high load;
// lambda = 5000/s keeps latency stable throughout.
#include "bench/lambda_common.h"

int main(int argc, char** argv) {
  using namespace mrp;         // NOLINT
  using namespace mrp::bench;  // NOLINT

  const bool quick = QuickMode(argc, argv);
  LambdaScenario sc;
  // Per-ring steps of 50..250 Mbps = consensus rates of ~760..3800
  // instances/s, so the three lambda tiers straddle the load range.
  sc.ring1 = Steps({50, 100, 150, 200, 250});
  sc.ring2 = Steps({50, 100, 150, 200, 250});
  sc.max_buffer_msgs = 0;  // show unbounded growth instead of halting
  sc.total = quick ? Seconds(40) : Seconds(100);

  PrintHeader("Figure 9 - lambda with equal constant ring rates",
              "Both rings step 50..250 Mbps every 20 s. lambda=0: latency\n"
              "drifts up (out-of-sync buffering, never recovers); 1000:\n"
              "stable until the rate exceeds it; 5000: stable throughout.");
  for (double lambda : {0.0, 1000.0, 5000.0}) RunLambdaSeries(lambda, sc, CsvDir(argc, argv), "fig09");
  std::printf("Expected shape: lambda=0 latency/buffers grow without bound;\n"
              "lambda=1000 degrades at the top rates; lambda=5000 flat.\n");
  return 0;
}
