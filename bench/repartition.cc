// Live repartition bench (docs/RECONFIG.md): a holder-routed,
// session-stamped KV workload runs against two rings while a
// RepartitionCoordinator splits the upper half of the key space out of
// ring 0's group into ring 1's — seal in the source stream, state
// handoff over the chunked snapshot transfer, routing flip via
// RoutingUpdate — and the bench bins throughput and p99 latency into
// 100 ms buckets across the move. A baseline run on the identical
// topology without the split provides the steady-state reference.
//
// The exit code is oracle-enforced: the run fails if the
// ReconfigOracle flags a lost or doubly-applied session command, if the
// plan does not complete, or if throughput during the split drops below
// 50% of steady state.
//
//   repartition [--quick] [--csv dir] [--trace f] [--metrics f]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "check/oracles.h"
#include "check/reconfig_oracle.h"
#include "multiring/sim_deployment.h"
#include "reconfig/plan.h"
#include "reconfig/repartition.h"
#include "reconfig/ring_view.h"
#include "smr/client.h"
#include "smr/replica.h"

namespace mrp::bench {
namespace {

using check::OracleSuite;
using check::ReconfigOracle;
using multiring::DeploymentOptions;
using multiring::SimDeployment;

constexpr std::uint64_t kPlanId = 31;
constexpr std::uint64_t kSplitLo = 500000;
constexpr std::uint64_t kKeyMax = 999999;
constexpr Duration kBucket = Millis(100);

struct Timeline {
  std::vector<double> ops_per_s;  // one entry per 100 ms bucket
  // Bucket indices of the split window [start, done).
  std::size_t split_start = 0;
  std::size_t split_done = 0;
};

struct ScenarioResult {
  Timeline timeline;
  double steady_ops = 0;  // mean bucket throughput before the split
  double during_ops = 0;  // ... while the plan was in flight
  double after_ops = 0;   // ... once the plan completed
  LatencySummary steady_lat, during_lat, after_lat;
  std::uint64_t completed = 0;
  std::uint64_t redirects = 0;
  bool plan_done = false;
  bool oracle_ok = false;
  std::string oracle_report;
};

ScenarioResult RunScenario(bool live_split, Duration total, Duration split_at,
                           const Observability* obs) {
  DeploymentOptions opts;
  opts.n_rings = 2;
  opts.batch_timeout = Millis(1);
  auto d = std::make_unique<SimDeployment>(opts);
  const GroupId g0 = d->ring(0).group;
  const GroupId g1 = d->ring(1).group;

  OracleSuite suite(&d->net().metrics());
  ReconfigOracle oracle(&suite);
  reconfig::RingHolder holder;

  auto route_of = [&d](int r) {
    reconfig::GroupRoute gr;
    gr.group = d->ring(r).group;
    gr.ring = d->ring(r).ring;
    gr.coordinator = d->ring(r).ring_members[0];
    gr.data_channel = d->ring(r).data_channel;
    gr.control_channel = d->ring(r).control_channel;
    gr.ring_members = d->ring(r).ring_members;
    return gr;
  };
  holder.Install(
      reconfig::RingConfiguration(1, {route_of(0)}, {{0, kKeyMax, g0}}));

  std::vector<sim::SimNode*> source_nodes;
  for (int r = 0; r < 2; ++r) {
    auto& node = d->net().AddNode();
    smr::ReplicaConfig rc;
    rc.partition = g0;
    rc.partition_ring.ring = d->ring(0);
    rc.respond = (r == 0);
    rc.sessions = true;
    const int ridx = oracle.RegisterReplica("source" + std::to_string(r), g0);
    rc.on_session_apply = [&oracle, ridx](std::uint64_t sid,
                                          std::uint64_t seq) {
      oracle.OnSessionApply(ridx, sid, seq);
    };
    source_nodes.push_back(&node);
    node.BindProtocol(std::make_unique<smr::Replica>(rc));
    d->net().Subscribe(node.self(), d->ring(0).data_channel);
    d->net().Subscribe(node.self(), d->ring(0).control_channel);
  }

  sim::SimNode* target_node = nullptr;
  {
    auto& node = d->net().AddNode();
    smr::ReplicaConfig rc;
    rc.partition = g1;
    rc.range = {kSplitLo, kKeyMax};
    rc.partition_ring.ring = d->ring(1);
    rc.respond = true;
    rc.sessions = true;
    rc.handoff_plan = kPlanId;
    rc.handoff_peers = {source_nodes[0]->self(), source_nodes[1]->self()};
    const int ridx = oracle.RegisterReplica("target", g1);
    rc.on_session_apply = [&oracle, ridx](std::uint64_t sid,
                                          std::uint64_t seq) {
      oracle.OnSessionApply(ridx, sid, seq);
    };
    target_node = &node;
    node.BindProtocol(std::make_unique<smr::Replica>(rc));
    d->net().Subscribe(node.self(), d->ring(1).data_channel);
    d->net().Subscribe(node.self(), d->ring(1).control_channel);
  }

  // The workload under measurement: closed-loop, holder-routed,
  // session-stamped writes plus a small query mix. Latencies land in
  // whichever phase histogram is current when the request completes.
  Histogram steady_hist, during_hist, after_hist;
  Histogram* phase_hist = &steady_hist;
  smr::KvClient* client = nullptr;
  sim::SimNode* client_node = nullptr;
  {
    sim::NodeSpec spec;
    spec.infinite_cpu = true;
    auto& node = d->net().AddNode(spec);
    smr::KvClientConfig cc;
    cc.rings.push_back(d->ring(0));
    cc.window = 8;
    cc.holder = &holder;
    cc.session_id = 3;
    cc.on_complete = [&oracle](std::uint64_t sid, std::uint64_t seq) {
      oracle.OnClientComplete(sid, seq);
    };
    cc.on_latency = [&phase_hist](Duration lat) { phase_hist->Record(lat); };
    auto cl = std::make_unique<smr::KvClient>(cc);
    client = cl.get();
    client_node = &node;
    node.BindProtocol(std::move(cl));
  }

  reconfig::RepartitionCoordinator* repart = nullptr;
  if (live_split) {
    auto& node = d->net().AddNode();
    reconfig::RepartitionConfig pc;
    pc.plan = reconfig::ReconfigPlan::Split(kPlanId, g0, g1, kSplitLo,
                                            kKeyMax, d->ring(1).ring);
    pc.source_ring = d->ring(0);
    pc.next = reconfig::RingConfiguration(
        2, {route_of(0), route_of(1)},
        {{0, kSplitLo - 1, g0}, {kSplitLo, kKeyMax, g1}});
    pc.target_replica = target_node->self();
    pc.notify = {client_node->self()};
    pc.start_delay = split_at;
    auto co = std::make_unique<reconfig::RepartitionCoordinator>(pc);
    repart = co.get();
    node.BindProtocol(std::move(co));
  }

  d->Start();

  ScenarioResult res;
  Timeline& tl = res.timeline;
  std::uint64_t mark = 0;
  bool in_split = false;
  for (TimePoint t{0}; t < total; t += kBucket) {
    d->RunFor(kBucket);
    const std::uint64_t done = client->completed();
    tl.ops_per_s.push_back(static_cast<double>(done - mark) /
                           ToSeconds(kBucket));
    mark = done;
    if (live_split && !in_split && t + kBucket >= split_at) {
      in_split = true;
      tl.split_start = tl.ops_per_s.size();
      phase_hist = &during_hist;
    }
    if (in_split && repart->done() && tl.split_done == 0) {
      tl.split_done = tl.ops_per_s.size();
      phase_hist = &after_hist;
    }
  }
  if (live_split && tl.split_done == 0) tl.split_done = tl.ops_per_s.size();

  oracle.Finish();

  auto mean_of = [&tl](std::size_t lo, std::size_t hi) {
    if (hi <= lo) return 0.0;
    double sum = 0;
    for (std::size_t i = lo; i < hi; ++i) sum += tl.ops_per_s[i];
    return sum / static_cast<double>(hi - lo);
  };
  const std::size_t n = tl.ops_per_s.size();
  // Skip the first buckets: session opens and window ramp-up.
  const std::size_t warm = 2;
  if (live_split) {
    res.steady_ops = mean_of(warm, tl.split_start);
    res.during_ops = mean_of(tl.split_start, tl.split_done);
    res.after_ops = mean_of(tl.split_done, n);
  } else {
    res.steady_ops = mean_of(warm, n);
  }
  res.steady_lat = Summarize(steady_hist);
  res.during_lat = Summarize(during_hist);
  res.after_lat = Summarize(after_hist);
  res.completed = client->completed();
  res.redirects = client->redirects_followed();
  res.plan_done = repart == nullptr || repart->done();
  res.oracle_ok = suite.ok();
  res.oracle_report = suite.Report();
  if (obs != nullptr && live_split) DumpMetrics(*obs, *d);
  return res;
}

void WriteCsv(const char* dir, const ScenarioResult& split,
              const ScenarioResult& base) {
  const std::string path = std::string(dir) + "/repartition.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "t_s,split_ops_per_s,baseline_ops_per_s,phase\n");
  const std::size_t n = split.timeline.ops_per_s.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char* phase = i < split.timeline.split_start  ? "steady"
                        : i < split.timeline.split_done ? "split"
                                                        : "after";
    const double b = i < base.timeline.ops_per_s.size()
                         ? base.timeline.ops_per_s[i]
                         : 0;
    std::fprintf(f, "%.1f,%.0f,%.0f,%s\n",
                 static_cast<double>(i + 1) * 0.1,
                 split.timeline.ops_per_s[i], b, phase);
  }
  std::fclose(f);
  std::printf("csv: %s\n", path.c_str());
}

}  // namespace
}  // namespace mrp::bench

int main(int argc, char** argv) {
  using namespace mrp;          // NOLINT
  using namespace mrp::bench;   // NOLINT
  const bool quick = QuickMode(argc, argv);
  const Duration total = quick ? Seconds(3) : Seconds(10);
  const Duration split_at = quick ? Seconds(1) : Seconds(3);
  Observability obs = SetupObservability(argc, argv);

  PrintHeader("repartition: live split vs static baseline",
              "holder-routed session client; upper half of the key space "
              "moves to ring 1 mid-run");

  ScenarioResult base =
      RunScenario(/*live_split=*/false, total, split_at, nullptr);
  ScenarioResult split =
      RunScenario(/*live_split=*/true, total, split_at, &obs);

  std::printf("\n%-22s %10s %10s %10s\n", "phase", "ops/s", "p50 ms",
              "p99 ms");
  std::printf("%-22s %10.0f %10.3f %10.3f\n", "baseline (no split)",
              base.steady_ops, base.steady_lat.p50_ms, base.steady_lat.p99_ms);
  std::printf("%-22s %10.0f %10.3f %10.3f\n", "split: steady",
              split.steady_ops, split.steady_lat.p50_ms,
              split.steady_lat.p99_ms);
  std::printf("%-22s %10.0f %10.3f %10.3f\n", "split: during move",
              split.during_ops, split.during_lat.p50_ms,
              split.during_lat.p99_ms);
  std::printf("%-22s %10.0f %10.3f %10.3f\n", "split: after move",
              split.after_ops, split.after_lat.p50_ms, split.after_lat.p99_ms);
  std::printf("\nsplit window: %.1f s -> %.1f s; redirects followed: %llu; "
              "completions: %llu\n",
              static_cast<double>(split.timeline.split_start) * 0.1,
              static_cast<double>(split.timeline.split_done) * 0.1,
              static_cast<unsigned long long>(split.redirects),
              static_cast<unsigned long long>(split.completed));

  if (const char* dir = CsvDir(argc, argv)) WriteCsv(dir, split, base);

  bool ok = true;
  if (!split.plan_done) {
    std::printf("FAIL: repartition plan did not complete\n");
    ok = false;
  }
  if (!split.oracle_ok || !base.oracle_ok) {
    std::printf("ORACLE VIOLATION\n%s\n%s\n", split.oracle_report.c_str(),
                base.oracle_report.c_str());
    ok = false;
  }
  if (split.during_ops < 0.5 * split.steady_ops) {
    std::printf("FAIL: throughput during the split (%.0f ops/s) fell below "
                "50%% of steady state (%.0f ops/s)\n",
                split.during_ops, split.steady_ops);
    ok = false;
  }
  if (ok) {
    std::printf("OK: plan completed, oracles clean, during-split throughput "
                ">= 50%% of steady state\n");
  }
  DumpObservability(obs, nullptr);
  return ok ? 0 : 1;
}
