// Ablations of the design choices DESIGN.md calls out:
//
//  A. Batch size (paper footnote 1: "we use batches of 8 kB as this
//     results in high throughput"): throughput of a single ring with
//     512 B client messages under 1/8/32 kB consensus batches.
//  B. Skip batching (Section IV-D: "the cost of executing any number of
//     skip instances is the same as the cost of executing a single skip
//     instance"): coordinator CPU and learner latency with batched vs
//     Algorithm-1-literal skips on an idle and a lightly loaded ring.
//  C. Ring size (Section IV-C: "to reduce response time, Ring Paxos
//     keeps f+1 acceptors in the ring only"): latency grows with each
//     in-ring acceptor, throughput stays coordinator-bound.
//  D. Groups-per-ring mapping (Section IV-D): two groups on dedicated
//     rings vs sharing one ring — the shared ring halves per-group
//     capacity and makes single-group learners pay for foreign traffic.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT
using multiring::DeploymentOptions;
using multiring::MergeLearner;
using multiring::SimDeployment;

void AblationBatchSize(Duration warm, Duration measure) {
  std::printf("\n[A] consensus batch size (512 B client messages)\n");
  std::printf("%-10s %12s %10s %12s %14s\n", "batch", "tput(Mbps)", "msg/s",
              "latency(ms)", "instances/s");
  for (std::size_t batch : {1024u, 8u * 1024u, 32u * 1024u}) {
    DeploymentOptions opts;
    opts.lambda_per_sec = 0;
    opts.batch_bytes = batch;
    SimDeployment d(opts);
    auto* learner = d.AddRingLearner(0, true);
    AddClosedLoopClients(d, 0, 48, 8, 512);
    d.Start();
    d.RunFor(warm);
    learner->delivered().TakeWindow();
    learner->latency().Reset();
    const auto inst_before = d.coordinator(0)->decided_instances();
    d.RunFor(measure);
    const auto w = learner->delivered().TakeWindow();
    std::printf("%-10zu %12.1f %10.0f %12.2f %14.0f\n", batch, w.Mbps(measure),
                w.MsgPerSec(measure), Summarize(learner->latency()).trimmed_mean_ms,
                static_cast<double>(d.coordinator(0)->decided_instances() - inst_before) /
                    ToSeconds(measure));
  }
}

void AblationSkipBatching(Duration warm, Duration measure) {
  std::printf("\n[B] skip batching at lambda=9000/s (2 rings, light load)\n");
  std::printf("%-10s %12s %14s %12s %14s\n", "skips", "coordCPU%", "skipProps/s",
              "latency(ms)", "tput(Mbps)");
  for (bool batched : {true, false}) {
    DeploymentOptions opts;
    opts.n_rings = 2;
    opts.lambda_per_sec = 9000;
    opts.batch_skips = batched;
    SimDeployment d(opts);
    auto* learner = d.AddMergeLearner({0, 1});
    AddOpenLoopClient(d, 0, {{Seconds(0), 500.0}}, 8 * 1024);
    AddOpenLoopClient(d, 1, {{Seconds(0), 500.0}}, 8 * 1024);
    d.Start();
    d.RunFor(warm);
    d.coordinator_node(0)->TakeCpuUtilisation();
    const auto props_before = d.coordinator(0)->skip_proposals();
    for (std::size_t g = 0; g < 2; ++g) {
      learner->stats(g).delivered.TakeWindow();
      learner->stats(g).latency.Reset();
    }
    d.RunFor(measure);
    double mbps = 0;
    Histogram lat;
    for (std::size_t g = 0; g < 2; ++g) {
      mbps += learner->stats(g).delivered.TakeWindow().Mbps(measure);
      lat.Merge(learner->stats(g).latency);
    }
    std::printf("%-10s %12.1f %14.0f %12.2f %14.1f\n",
                batched ? "batched" : "literal",
                d.coordinator_node(0)->TakeCpuUtilisation() * 100,
                static_cast<double>(d.coordinator(0)->skip_proposals() - props_before) /
                    ToSeconds(measure),
                Summarize(lat).trimmed_mean_ms, mbps);
  }
}

void AblationRingSize(Duration warm, Duration measure) {
  std::printf("\n[C] in-ring acceptor count (f+1 = ring size)\n");
  std::printf("%-10s %18s %18s %16s\n", "ring", "lightLoadLat(ms)",
              "decideLat(ms)", "maxTput(Mbps)");
  for (int size : {2, 3, 4, 5}) {
    // Light load: latency reflects the ring traversal length — the
    // reason Ring Paxos keeps only f+1 acceptors in the ring.
    double light_lat = 0, decide_lat = 0, max_tput = 0;
    {
      DeploymentOptions opts;
      opts.lambda_per_sec = 0;
      opts.ring_size = size;
      SimDeployment d(opts);
      auto* learner = d.AddRingLearner(0, true);
      AddClosedLoopClients(d, 0, 2, 1, 8 * 1024);
      d.Start();
      d.RunFor(warm);
      learner->latency().Reset();
      d.coordinator(0)->decide_latency().Reset();
      d.RunFor(measure);
      light_lat = Summarize(learner->latency()).trimmed_mean_ms;
      decide_lat = Summarize(d.coordinator(0)->decide_latency()).trimmed_mean_ms;
    }
    {
      DeploymentOptions opts;
      opts.lambda_per_sec = 0;
      opts.ring_size = size;
      SimDeployment d(opts);
      auto* learner = d.AddRingLearner(0, true);
      AddClosedLoopClients(d, 0, 48, 2, 8 * 1024);
      d.Start();
      d.RunFor(warm);
      learner->delivered().TakeWindow();
      d.RunFor(measure);
      max_tput = learner->delivered().TakeWindow().Mbps(measure);
    }
    std::printf("%-10d %18.2f %18.2f %16.1f\n", size, light_lat, decide_lat,
                max_tput);
  }
}

void AblationGroupMapping(Duration warm, Duration measure) {
  std::printf("\n[D] 2 groups: dedicated rings vs one shared ring\n");
  std::printf("%-12s %14s %16s %12s\n", "mapping", "total(Mbps)",
              "perGroup(Mbps)", "waste(msgs)");
  for (bool shared : {false, true}) {
    DeploymentOptions opts;
    opts.n_rings = shared ? 1 : 2;
    opts.lambda_per_sec = 0;
    SimDeployment d(opts);
    // One single-group subscriber per group.
    std::vector<MergeLearner*> learners;
    for (GroupId g = 0; g < 2; ++g) {
      auto& node = d.net().AddNode();
      MergeLearner::Options mo;
      mo.send_delivery_acks = true;
      ringpaxos::LearnerOptions lo;
      lo.ring = d.ring(shared ? 0 : static_cast<int>(g));
      lo.subscribe_only = {g};
      mo.groups.push_back(lo);
      auto learner = std::make_unique<MergeLearner>(std::move(mo));
      learners.push_back(learner.get());
      node.BindProtocol(std::move(learner));
      d.net().Subscribe(node.self(), lo.ring.data_channel);
      d.net().Subscribe(node.self(), lo.ring.control_channel);
    }
    for (GroupId g = 0; g < 2; ++g) {
      ringpaxos::ProposerConfig pc;
      pc.max_outstanding = 2;
      pc.payload_size = 8 * 1024;
      for (int c = 0; c < 24; ++c) {
        d.AddProposer(shared ? 0 : static_cast<int>(g), pc, g);
      }
    }
    d.Start();
    d.RunFor(warm);
    for (auto* l : learners) l->stats(0).delivered.TakeWindow();
    const std::uint64_t waste_before =
        learners[0]->stats(0).discarded + learners[1]->stats(0).discarded;
    d.RunFor(measure);
    double total = 0;
    for (auto* l : learners) {
      total += l->stats(0).delivered.TakeWindow().Mbps(measure);
    }
    const std::uint64_t waste = learners[0]->stats(0).discarded +
                                learners[1]->stats(0).discarded - waste_before;
    std::printf("%-12s %14.1f %16.1f %12llu\n", shared ? "shared" : "dedicated",
                total, total / 2, static_cast<unsigned long long>(waste));
  }
}

void AblationMulticast(Duration warm, Duration measure) {
  std::printf("\n[E] Phase 2A dissemination: ip-multicast vs unicast fanout\n");
  std::printf("%-10s %10s %14s %14s\n", "mode", "learners", "tput(Mbps)",
              "coordCPU%");
  for (bool unicast : {false, true}) {
    for (int learners : {1, 4, 8}) {
      // Hand-built deployment: the fanout target list must include the
      // learners, which SimDeployment only creates after the ring.
      sim::SimNetwork net;
      ringpaxos::RingConfig rc;
      rc.ring = 0;
      rc.group = 0;
      rc.data_channel = 0;
      rc.control_channel = 1;
      rc.lambda_per_sec = 0;
      std::vector<sim::SimNode*> acceptors;
      for (int i = 0; i < 2; ++i) {
        auto& node = net.AddNode();
        rc.ring_members.push_back(node.self());
        acceptors.push_back(&node);
      }
      std::vector<ringpaxos::RingLearner*> learner_protos;
      std::vector<NodeId> learner_ids;
      for (int l = 0; l < learners; ++l) {
        auto& node = net.AddNode();
        learner_ids.push_back(node.self());
        net.Subscribe(node.self(), rc.data_channel);
        net.Subscribe(node.self(), rc.control_channel);
        ringpaxos::RingLearner::Options lo;
        lo.learner.ring = rc;
        lo.send_delivery_acks = (l == 0);
        auto proto = std::make_unique<ringpaxos::RingLearner>(std::move(lo));
        learner_protos.push_back(proto.get());
        node.BindProtocol(std::move(proto));
      }
      rc.unicast_fanout = unicast;
      if (unicast) {
        rc.fanout_targets = learner_ids;
        rc.fanout_targets.push_back(rc.ring_members[1]);
      }
      for (auto* node : acceptors) {
        node->BindProtocol(std::make_unique<ringpaxos::RingNode>(rc));
        net.Subscribe(node->self(), rc.data_channel);
        net.Subscribe(node->self(), rc.control_channel);
      }
      for (int c = 0; c < 48; ++c) {
        sim::NodeSpec spec;
        spec.infinite_cpu = true;
        auto& cnode = net.AddNode(spec);
        ringpaxos::ProposerConfig pc;
        pc.ring = 0;
        pc.coordinator = rc.ring_members[0];
        pc.max_outstanding = 2;
        pc.payload_size = 8 * 1024;
        cnode.BindProtocol(std::make_unique<ringpaxos::Proposer>(pc));
        net.Subscribe(cnode.self(), rc.control_channel);
      }
      net.StartAll();
      net.RunFor(warm);
      learner_protos[0]->delivered().TakeWindow();
      acceptors[0]->TakeCpuUtilisation();
      net.RunFor(measure);
      const auto w = learner_protos[0]->delivered().TakeWindow();
      std::printf("%-10s %10d %14.1f %14.1f\n", unicast ? "unicast" : "multicast",
                  learners, w.Mbps(measure),
                  acceptors[0]->TakeCpuUtilisation() * 100);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(4);

  PrintHeader("Ablations - Ring Paxos / Multi-Ring Paxos design choices",
              "Batch size, skip batching, ring size, group-to-ring mapping.");
  AblationBatchSize(warm, measure);
  AblationSkipBatching(warm, measure);
  AblationRingSize(warm, measure);
  AblationGroupMapping(warm, measure);
  AblationMulticast(warm, measure);
  std::printf(
      "\nExpected: 8-32 kB batches beat 1 kB on throughput; literal skips\n"
      "burn coordinator CPU for no throughput gain; latency grows with\n"
      "ring size; the shared ring halves per-group capacity and makes\n"
      "single-group learners discard foreign messages; unicast fanout\n"
      "collapses as receivers are added while multicast stays flat.\n");
  return 0;
}
