// Figure 10: the effect of lambda when ring 1 multicasts at twice the
// rate of ring 2 (both constant, stepped every 20 s). When the fast
// ring's consensus rate exceeds lambda, the slow ring cannot be padded
// to match and the learner's buffer grows until it overflows — the
// learner halts (it cannot deliver buffered messages while new ones
// keep arriving). Only a lambda above the fastest ring's rate survives.
#include "bench/lambda_common.h"

int main(int argc, char** argv) {
  using namespace mrp;         // NOLINT
  using namespace mrp::bench;  // NOLINT

  const bool quick = QuickMode(argc, argv);
  LambdaScenario sc;
  sc.ring1 = Steps({100, 200, 300, 400, 500});
  sc.ring2 = Steps({50, 100, 150, 200, 250});
  sc.max_buffer_msgs = 20000;
  sc.total = quick ? Seconds(40) : Seconds(100);

  PrintHeader("Figure 10 - lambda with ring1 at twice ring2's rate",
              "lambda=1000/s overflows early; 5000/s overflows once ring1\n"
              "exceeds ~330 Mbps; 9000/s handles every step.");
  for (double lambda : {1000.0, 5000.0, 9000.0}) RunLambdaSeries(lambda, sc, CsvDir(argc, argv), "fig10");
  std::printf("Expected shape: buffer overflow halts the learner for small\n"
              "lambda (delivery -> 0); lambda=9000 stays stable.\n");
  return 0;
}
