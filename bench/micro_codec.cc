// Micro-benchmarks of the wire codec: encode/decode cost for the hot
// messages (P2A with an 8 kB batch, P2B, decisions).
#include <benchmark/benchmark.h>

#include "net/codec.h"
#include "paxos/value.h"
#include "ringpaxos/messages.h"

namespace {

using namespace mrp;  // NOLINT

paxos::ClientMsg MakeMsg(std::size_t payload) {
  paxos::ClientMsg m;
  m.group = 1;
  m.proposer = 2;
  m.seq = 3;
  m.payload.assign(payload, 0x5a);
  m.payload_size = static_cast<std::uint32_t>(payload);
  return m;
}

ringpaxos::P2A MakeP2A(std::size_t payload) {
  return ringpaxos::P2A{1, 2, 1000, 42,
                        paxos::Value::Batch({MakeMsg(payload)}),
                        {{998, 40}, {999, 41}},
                        {0, 1}};
}

void BM_EncodeP2A(benchmark::State& state) {
  const auto msg = MakeP2A(static_cast<std::size_t>(state.range(0)));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    Bytes frame = net::EncodeMessage(msg);
    bytes += frame.size();
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EncodeP2A)->Arg(512)->Arg(8 * 1024)->Arg(32 * 1024);

void BM_DecodeP2A(benchmark::State& state) {
  const Bytes frame = net::EncodeMessage(MakeP2A(static_cast<std::size_t>(state.range(0))));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    MessagePtr msg = net::DecodeMessage(frame);
    bytes += frame.size();
    benchmark::DoNotOptimize(msg);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DecodeP2A)->Arg(512)->Arg(8 * 1024)->Arg(32 * 1024);

void BM_EncodeP2B(benchmark::State& state) {
  const ringpaxos::P2B msg{1, 2, 1000, 42, 1};
  for (auto _ : state) {
    Bytes frame = net::EncodeMessage(msg);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_EncodeP2B);

void BM_RoundtripDecision(benchmark::State& state) {
  std::vector<ringpaxos::Decided> decided;
  for (int i = 0; i < 128; ++i) {
    decided.push_back({static_cast<InstanceId>(i), static_cast<ValueId>(i)});
  }
  const ringpaxos::DecisionMsg msg{1, decided};
  for (auto _ : state) {
    MessagePtr out = net::DecodeMessage(net::EncodeMessage(msg));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RoundtripDecision);

}  // namespace

BENCHMARK_MAIN();
