// Production-scale benchmark suite: the simulator scale-out (timer
// wheel + pooled events) and the workload engine (src/workload) under
// load, emitted as machine-readable JSON (BENCH_scale.json at the repo
// root is the committed baseline; schema mrp-bench-scale/v1). The gate
// policy is the same as BENCH_core.json: tools/perf/compare.py diffs a
// candidate against the baseline and fails CI on rate regressions.
//
// Scenarios:
//   sched_churn_pq /     raw Scheduler churn with thousands of live
//   sched_churn_wheel    timers + cancel/re-arm storms, once per core —
//                        the committed pair documents the wheel's win
//                        over the binary-heap baseline (sim-events/s)
//   workload_mix         8 rings x the multi-tenant DefaultMix driven
//                        end to end (delivered msgs/s; delivery-latency
//                        p50/p99/p99.9 in sim-time ns)
//   scale_100rings       100 rings x 1000 open-loop sessions per ring
//                        (10^5 sessions on one driver), sim-events/s
//
// All deployment scenarios run on the deterministic simulator: the work
// is seeded and byte-reproducible, only the wall-clock rate depends on
// the machine. `--sweep` runs the merge-learner saturation sweep
// (groups x lambda x rate-skew) recorded in EXPERIMENTS.md instead of
// the committed scenarios.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rand.h"
#include "multiring/merge_learner.h"
#include "multiring/sim_deployment.h"
#include "sim/scheduler.h"
#include "workload/driver.h"
#include "workload/sim_harness.h"
#include "workload/tenant.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT

// The one wall-clock read in the suite (same policy as perf_suite.cc:
// sim time is deterministic, a perf gate has to measure elapsed time).
std::uint64_t WallNowNs() {
  const auto now =
      // mrp-lint: allow(wall-clock) -- perf harness measures real elapsed time
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

struct ScenarioResult {
  std::string name;
  std::string unit;  // "events/s" or "msgs/s"
  double rate = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
  std::uint64_t ops = 0;
};

ScenarioResult Finish(std::string name, std::string unit, std::uint64_t ops,
                      double units_done, std::uint64_t wall_ns,
                      const Histogram& lat) {
  ScenarioResult r;
  r.name = std::move(name);
  r.unit = std::move(unit);
  r.ops = ops;
  r.rate = wall_ns > 0 ? units_done * 1e9 / static_cast<double>(wall_ns) : 0;
  const LatencySummary ls = Summarize(lat);
  r.p50_ns = ls.p50_ns;
  r.p99_ns = ls.p99_ns;
  r.p999_ns = ls.p999_ns;
  return r;
}

// ---- scheduler churn: the timer-wheel acceptance workload ----
// A population of self-rescheduling timers whose delays span all wheel
// levels (1us .. 300ms), plus a periodic cancel/re-arm storm — the
// shape a 10^5-session driver plus per-ring batch/heartbeat/retry
// timers produces. Run once per core; the wheel's O(1) insert and
// pooled event records are the difference under measurement.

ScenarioResult SchedChurn(bool quick, sim::Scheduler::Core core) {
  sim::Scheduler sched(core);
  Rng rng(2026);
  constexpr int kTimers = 8192;
  std::vector<std::uint64_t> ids(kTimers, 0);

  auto delay = [&rng]() -> Duration {
    const auto band = rng.below(10);
    if (band < 6) return Micros(1 + static_cast<std::int64_t>(rng.below(64)));
    if (band < 9) return Micros(64 + static_cast<std::int64_t>(rng.below(4000)));
    return Millis(4 + static_cast<std::int64_t>(rng.below(296)));
  };
  std::function<void(int)> arm = [&](int slot) {
    ids[static_cast<std::size_t>(slot)] =
        sched.After(delay(), [&arm, slot] { arm(slot); });
  };
  for (int i = 0; i < kTimers; ++i) arm(i);
  // Cancel/re-arm storm: every 500us, 256 random victims.
  std::function<void()> storm = [&] {
    for (int i = 0; i < 256; ++i) {
      const auto victim = static_cast<int>(rng.below(kTimers));
      sched.Cancel(ids[static_cast<std::size_t>(victim)]);
      arm(victim);
    }
    sched.After(Micros(500), storm);
  };
  sched.After(Micros(500), storm);

  const int chunks = quick ? 40 : 300;
  const int per_chunk = 8192;
  Histogram per_op;
  std::uint64_t ops = 0;
  const std::uint64_t t0 = WallNowNs();
  for (int c = 0; c < chunks; ++c) {
    const std::uint64_t c0 = WallNowNs();
    for (int i = 0; i < per_chunk; ++i) sched.RunOne();
    const std::uint64_t c1 = WallNowNs();
    per_op.RecordValue((c1 - c0) / per_chunk);
    ops += per_chunk;
  }
  const std::uint64_t wall = WallNowNs() - t0;
  return Finish(core == sim::Scheduler::Core::kWheel ? "sched_churn_wheel"
                                                     : "sched_churn_pq",
                "events/s", ops, static_cast<double>(ops), wall, per_op);
}

// ---- workload mix: the multi-tenant engine end to end ----
// 8 rings, DefaultMix per ring, one merge learner over everything.
// Rate is delivered msgs/s against the wall; the latency columns are
// the tenants' merged delivery-latency histogram in SIM-time ns — the
// number the saturation sweep cares about.

ScenarioResult WorkloadMix(bool quick) {
  const int n_rings = 8;
  multiring::DeploymentOptions opts;
  opts.n_rings = n_rings;
  opts.lambda_per_sec = 20000;
  multiring::SimDeployment d(opts);
  std::vector<int> rings;
  for (int r = 0; r < n_rings; ++r) rings.push_back(r);

  workload::DriverConfig cfg;
  cfg.mix = workload::DefaultMix();
  for (auto& t : cfg.mix.tenants) t.sessions *= 4;  // 40 sessions/ring
  auto* driver = workload::AddWorkloadDriver(d, std::move(cfg), rings);
  d.AddMergeLearner(rings)->set_on_deliver(
      [driver, &d](GroupId, const paxos::ClientMsg& m) {
        driver->RecordDelivery(d.net().now(), m);
      });

  d.Start();
  d.RunFor(Seconds(1));  // warm up batching + the MMPP/diurnal phases
  std::uint64_t last = driver->total_delivered();
  const auto sim_chunk = Millis(quick ? 100 : 500);
  const int chunks = quick ? 5 : 12;
  std::uint64_t ops = 0;
  const std::uint64_t t0 = WallNowNs();
  for (int c = 0; c < chunks; ++c) d.RunFor(sim_chunk);
  const std::uint64_t wall = WallNowNs() - t0;
  ops = driver->total_delivered() - last;

  Histogram lat;
  for (std::size_t t = 0; t < 3; ++t) lat.Merge(driver->tenant_stats(t).latency);
  return Finish("workload_mix", "msgs/s", ops, static_cast<double>(ops), wall,
                lat);
}

// ---- scale_100rings: the 10^5-session acceptance scenario ----
// One driver node multiplexing 1000 open-loop sessions on each of 100
// rings (full mode; quick shrinks to 10 x 100 for CI). Rate is
// simulator events/s — the number the timer wheel and pooling moved —
// and ops counts the messages actually submitted.

ScenarioResult Scale100Rings(bool quick) {
  const int n_rings = quick ? 10 : 100;
  const std::uint32_t sessions_per_ring = quick ? 100 : 1000;
  multiring::DeploymentOptions opts;
  opts.n_rings = n_rings;
  opts.lambda_per_sec = 20000;
  multiring::SimDeployment d(opts);
  std::vector<int> rings;
  for (int r = 0; r < n_rings; ++r) rings.push_back(r);

  workload::DriverConfig cfg;
  workload::TenantSpec t;
  t.name = "fleet";
  t.sessions = sessions_per_ring;
  t.arrival.kind = workload::ArrivalKind::kPoisson;
  t.arrival.rate_per_sec = 2;  // 2k msgs/s offered per ring
  t.keys.kind = workload::KeyDistKind::kZipfian;
  t.payload_bytes = 64;
  cfg.mix.tenants.push_back(t);
  cfg.start_jitter = Millis(50);
  auto* driver = workload::AddWorkloadDriver(d, std::move(cfg), rings);

  d.Start();
  d.RunFor(Millis(200));  // let the session fleet spin up
  const auto& sched = d.net().scheduler();
  const std::uint64_t ev0 = sched.events_run();
  const std::uint64_t sub0 = driver->total_submitted();
  const auto sim_chunk = Millis(quick ? 100 : 200);
  const int chunks = quick ? 3 : 5;
  Histogram per_chunk_ev;
  const std::uint64_t t0 = WallNowNs();
  std::uint64_t last_ev = ev0;
  for (int c = 0; c < chunks; ++c) {
    const std::uint64_t c0 = WallNowNs();
    d.RunFor(sim_chunk);
    const std::uint64_t c1 = WallNowNs();
    const std::uint64_t now_ev = sched.events_run();
    if (now_ev > last_ev) {
      per_chunk_ev.RecordValue((c1 - c0) / (now_ev - last_ev));
    }
    last_ev = now_ev;
  }
  const std::uint64_t wall = WallNowNs() - t0;
  const std::uint64_t events = sched.events_run() - ev0;
  std::printf("  [scale] rings=%d sessions=%zu submitted=%" PRIu64
              " sim_events=%" PRIu64 " pool_reuse=%" PRIu64 "\n",
              n_rings, driver->session_count(),
              driver->total_submitted() - sub0, events, sched.pool_reused());
  return Finish("scale_100rings", "events/s",
                driver->total_submitted() - sub0,
                static_cast<double>(events), wall, per_chunk_ev);
}

// ---- merge-learner saturation sweep (EXPERIMENTS.md) ----
// For each (groups, offered lambda, rate skew) cell, drive `groups`
// rings from one workload driver with per-ring rates following a
// geometric skew (skew=0: uniform; skew s: ring r carries weight
// (1-s)^r, normalised), subscribe one merge learner to everything and
// report delivered/offered plus delivery-latency p50/p99/p99.9. The
// saturation point is the first lambda where delivered/offered drops
// below ~0.95 or p99 detaches from delta.

void RunSweep(bool quick) {
  std::printf("%7s %9s %6s %10s %10s %9s %9s %9s %7s\n", "groups", "lambda",
              "skew", "offered/s", "deliv/s", "p50_ms", "p99_ms", "p999_ms",
              "ratio");
  const std::vector<int> group_counts = quick ? std::vector<int>{4}
                                              : std::vector<int>{4, 8, 16};
  // Instances carry 8 kB batches, so the learner's per-message recv
  // cost is amortised and the knee sits in the hundreds of k msgs/s
  // (its 1 GbE access link caps aggregate delivery near ~500k/s of
  // ~230-byte messages). The axis has to reach past that to find it.
  const std::vector<double> lambdas =
      quick ? std::vector<double>{4000}
            : std::vector<double>{16000, 64000, 128000, 256000,
                                  384000, 512000, 640000, 768000};
  const std::vector<double> skews = quick ? std::vector<double>{0.0}
                                          : std::vector<double>{0.0, 0.3};
  for (int groups : group_counts) {
    for (double skew : skews) {
      for (double lambda : lambdas) {
        multiring::DeploymentOptions opts;
        opts.n_rings = groups;
        opts.lambda_per_sec = 100000;  // rings themselves never throttle
        multiring::SimDeployment d(opts);
        std::vector<int> rings;
        for (int r = 0; r < groups; ++r) rings.push_back(r);

        // Geometric per-ring weights; sessions-per-ring is fixed, the
        // per-session rate carries the skew.
        std::vector<double> weight(static_cast<std::size_t>(groups));
        double wsum = 0;
        for (int r = 0; r < groups; ++r) {
          weight[static_cast<std::size_t>(r)] =
              skew == 0.0 ? 1.0 : std::pow(1.0 - skew, r);
          wsum += weight[static_cast<std::size_t>(r)];
        }
        // One driver per ring so each ring gets its own tenant rate.
        std::vector<workload::WorkloadDriver*> drivers;
        for (int r = 0; r < groups; ++r) {
          workload::DriverConfig cfg;
          workload::TenantSpec t;
          t.name = "sweep";
          t.sessions = 20;
          t.arrival.kind = workload::ArrivalKind::kPoisson;
          t.arrival.rate_per_sec =
              lambda * weight[static_cast<std::size_t>(r)] / wsum / 20.0;
          t.keys.kind = workload::KeyDistKind::kZipfian;
          t.payload_bytes = 200;
          cfg.mix.tenants.push_back(t);
          cfg.driver_id = static_cast<std::uint64_t>(r);
          drivers.push_back(workload::AddWorkloadDriver(d, std::move(cfg), {r}));
        }
        d.AddMergeLearner(rings)->set_on_deliver(
            [&drivers, &d](GroupId, const paxos::ClientMsg& m) {
              for (auto* dr : drivers) dr->RecordDelivery(d.net().now(), m);
            });
        d.Start();
        const Duration warm = Seconds(1);
        const Duration meas = quick ? Seconds(1) : Seconds(4);
        d.RunFor(warm);
        std::uint64_t sub0 = 0, del0 = 0;
        for (auto* dr : drivers) {
          sub0 += dr->total_submitted();
          del0 += dr->total_delivered();
        }
        d.RunFor(meas);
        std::uint64_t sub = 0, del = 0;
        Histogram lat;
        for (auto* dr : drivers) {
          sub += dr->total_submitted();
          del += dr->total_delivered();
          lat.Merge(dr->tenant_stats(0).latency);
        }
        // Latency percentiles cover the full run (histograms only
        // merge); the 4x longer measurement window dominates warmup.
        const double secs = ToSeconds(meas);
        const double offered = static_cast<double>(sub - sub0) / secs;
        const double delivered = static_cast<double>(del - del0) / secs;
        const LatencySummary ls = Summarize(lat);
        std::printf("%7d %9.0f %6.1f %10.0f %10.0f %9.2f %9.2f %9.2f %7.3f\n",
                    groups, lambda, skew, offered, delivered, ls.p50_ms,
                    ls.p99_ms, ls.p999_ms,
                    offered > 0 ? delivered / offered : 0.0);
      }
    }
  }
}

void WriteJson(const char* path, const char* mode,
               const std::vector<ScenarioResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "scale_suite: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"mrp-bench-scale/v1\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n  \"scenarios\": {\n", mode);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    \"%s\": {\"unit\": \"%s\", \"rate\": %.1f, "
                 "\"p50_ns\": %.0f, \"p99_ns\": %.0f, \"p999_ns\": %.0f, "
                 "\"ops\": %" PRIu64 "}%s\n",
                 r.name.c_str(), r.unit.c_str(), r.rate, r.p50_ns, r.p99_ns,
                 r.p999_ns, r.ops, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const char* out = FlagValue(argc, argv, "--out");
  if (out == nullptr) out = "BENCH_scale.json";

  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sweep") sweep = true;
  }
  if (sweep) {
    PrintHeader("Merge-learner saturation sweep",
                "groups x lambda x rate-skew; results go to EXPERIMENTS.md");
    RunSweep(quick);
    return 0;
  }

  PrintHeader("Scale suite (workload engine + simulator scale-out)",
              quick ? "quick mode (CI smoke): shorter runs, noisier"
                    : "full mode: baseline-quality runs");

  std::vector<ScenarioResult> results;
  results.push_back(SchedChurn(quick, sim::Scheduler::Core::kPq));
  results.push_back(SchedChurn(quick, sim::Scheduler::Core::kWheel));
  results.push_back(WorkloadMix(quick));
  results.push_back(Scale100Rings(quick));

  std::printf("%-20s %14s %10s %10s %10s %10s %10s\n", "scenario", "rate",
              "unit", "p50(ns)", "p99(ns)", "p99.9(ns)", "ops");
  for (const auto& r : results) {
    std::printf("%-20s %14.0f %10s %10.0f %10.0f %10.0f %10" PRIu64 "\n",
                r.name.c_str(), r.rate, r.unit.c_str(), r.p50_ns, r.p99_ns,
                r.p999_ns, r.ops);
  }
  const double pq = results[0].rate;
  const double wheel = results[1].rate;
  if (pq > 0) {
    std::printf("\nwheel/pq churn speedup: %.2fx%s\n", wheel / pq,
                quick ? " (quick mode, advisory)" : "");
  }

  WriteJson(out, quick ? "quick" : "full", results);
  std::printf("json -> %s\n", out);
  return 0;
}
