// Figure 8: the effect of M (consensus instances a learner consumes per
// group per merge turn). While M instances of one ring are handled, the
// other ring's instances wait buffered, so average latency grows with M.
// Throughput and learner CPU are unaffected.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT
using multiring::DeploymentOptions;
using multiring::SimDeployment;

struct Point {
  double total_mbps;
  double latency_ms;
  double learner_cpu;
};

Point RunPoint(std::uint32_t m, double per_ring_rate, Duration warm,
               Duration measure) {
  DeploymentOptions opts;
  opts.n_rings = 2;
  opts.lambda_per_sec = 9000;
  SimDeployment d(opts);
  auto* learner = d.AddMergeLearner({0, 1}, m);
  for (int r = 0; r < 2; ++r) {
    AddOpenLoopClient(d, r, {{Seconds(0), per_ring_rate}}, 8 * 1024);
  }
  d.Start();
  d.RunFor(warm);
  for (std::size_t g = 0; g < 2; ++g) {
    learner->stats(g).delivered.TakeWindow();
    learner->stats(g).latency.Reset();
  }
  auto* lnode = d.learner_node(0);
  lnode->TakeCpuUtilisation();
  d.RunFor(measure);

  Point p{0, 0, 0};
  Histogram lat;
  for (std::size_t g = 0; g < 2; ++g) {
    p.total_mbps += learner->stats(g).delivered.TakeWindow().Mbps(measure);
    lat.Merge(learner->stats(g).latency);
  }
  p.latency_ms = Summarize(lat).trimmed_mean_ms;
  p.learner_cpu = lnode->TakeCpuUtilisation();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(4);
  const std::vector<double> rates =
      quick ? std::vector<double>{500, 4000}
            : std::vector<double>{250, 500, 1000, 2000, 3000, 4000, 5000, 6000};

  PrintHeader("Figure 8 - the effect of M",
              "2 rings, 1 learner in both. Larger M delays the other ring's\n"
              "buffered instances; learner CPU and max throughput unchanged.");
  std::printf("%-6s %14s %12s %12s\n", "M", "total(Mbps)", "latency(ms)",
              "learnerCPU%");
  for (std::uint32_t m : {1u, 10u, 100u}) {
    for (double rate : rates) {
      const auto p = RunPoint(m, rate, warm, measure);
      std::printf("%-6u %14.1f %12.2f %12.1f\n", m, p.total_mbps, p.latency_ms,
                  p.learner_cpu * 100);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: average latency ordered M=100 > M=10 > M=1 at\n"
              "equal load; throughput and learner CPU curves overlap.\n");
  return 0;
}
