// Lease-local vs through-ring reads (docs/SESSIONS.md). Two identical
// deployments carry the same background write lambda; a read-only
// session client either holds no lease (every read is ordered through
// the ring) or reads from the lease-holding replica. The bench reports
// read throughput and latency for both paths and checks the local path
// delivers at least 5x the through-ring read throughput while the
// session/lease oracles (src/check) hold.
//
//   session_reads [--quick] [--write-lambda N] [--trace f] [--metrics f]
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "check/oracles.h"
#include "check/session_oracle.h"
#include "multiring/sim_deployment.h"
#include "session/client.h"
#include "session/lease.h"
#include "smr/replica.h"

namespace mrp::bench {
namespace {

using check::OracleSuite;
using check::SessionOracle;
using multiring::DeploymentOptions;
using multiring::SimDeployment;

struct ScenarioResult {
  double reads_per_s = 0;
  LatencySummary latency;
  std::uint64_t local_reads = 0;
  std::uint64_t fallback_reads = 0;
  std::uint64_t ring_reads = 0;
  bool oracle_ok = false;
  std::string oracle_report;
};

ScenarioResult RunScenario(bool lease_local, double write_lambda,
                           Duration warmup, Duration measure,
                           const Observability* obs) {
  DeploymentOptions opts;
  opts.n_rings = 1;
  opts.lambda_per_sec = 8000;
  opts.batch_timeout = Millis(1);
  auto d = std::make_unique<SimDeployment>(opts);
  OracleSuite oracle(&d->net().metrics());
  SessionOracle session_oracle(&oracle);

  std::vector<smr::Replica*> replicas;
  std::vector<sim::SimNode*> replica_nodes;
  for (int r = 0; r < 2; ++r) {
    auto& node = d->net().AddNode();
    smr::ReplicaConfig rc;
    rc.partition = 0;
    rc.partition_ring.ring = d->ring(0);
    rc.respond = (r == 0);
    rc.sessions = true;
    rc.serve_local_reads = (r == 1);
    const int idx = oracle.RegisterReplica("replica" + std::to_string(r), 0);
    rc.on_apply = [&oracle, idx](const smr::Command& cmd) {
      oracle.OnSmrApply(idx, cmd);
    };
    const int sidx =
        session_oracle.RegisterReplica("replica" + std::to_string(r));
    rc.on_session_apply = [&session_oracle, sidx](std::uint64_t sid,
                                                  std::uint64_t seq) {
      session_oracle.OnSessionApply(sidx, sid, seq);
    };
    if (r == 1) {
      rc.on_local_read = [&session_oracle, sidx](std::uint64_t epoch,
                                                 bool lease_valid,
                                                 InstanceId grant_point,
                                                 InstanceId frontier) {
        session_oracle.OnLocalRead(sidx, epoch, lease_valid, grant_point,
                                   frontier);
      };
    }
    auto rep = std::make_unique<smr::Replica>(rc);
    replicas.push_back(rep.get());
    replica_nodes.push_back(&node);
    node.BindProtocol(std::move(rep));
    d->net().Subscribe(node.self(), d->ring(0).data_channel);
    d->net().Subscribe(node.self(), d->ring(0).control_channel);
  }
  {
    auto& node = d->net().AddNode();
    session::LeaseGrantorConfig lc;
    lc.ring = d->ring(0).ring;
    lc.group = d->ring(0).group;
    lc.holder = replica_nodes[1]->self();
    node.BindProtocol(std::make_unique<session::LeaseGrantor>(lc));
    d->net().Subscribe(node.self(), d->ring(0).data_channel);
    d->net().Subscribe(node.self(), d->ring(0).control_channel);
  }

  // Equal write lambda in both scenarios: an open-loop Poisson proposer.
  AddOpenLoopClient(*d, 0, {{TimePoint(0), write_lambda}}, /*payload=*/512);

  // The read-only session client under test.
  session::SessionClient* client = nullptr;
  {
    sim::NodeSpec spec;
    spec.infinite_cpu = true;
    auto& node = d->net().AddNode(spec);
    session::SessionClientConfig sc;
    sc.session_id = 1;
    sc.ring = d->ring(0);
    sc.read_replica =
        lease_local ? replica_nodes[1]->self() : kNoNode;
    sc.window = 8;
    sc.read_ratio = 1.0;  // reads only; the Poisson proposer writes
    auto cl = std::make_unique<session::SessionClient>(sc);
    client = cl.get();
    node.BindProtocol(std::move(cl));
  }

  d->Start();
  d->RunFor(warmup);
  const std::uint64_t completed_mark = client->completed();
  d->RunFor(measure);
  const std::uint64_t reads = client->completed() - completed_mark;

  oracle.Finish();

  ScenarioResult res;
  res.reads_per_s = static_cast<double>(reads) / ToSeconds(measure);
  res.latency = Summarize(client->read_latency());
  res.local_reads = client->local_reads();
  res.fallback_reads = client->fallback_reads();
  res.ring_reads = client->ring_reads();
  res.oracle_ok = oracle.ok();
  res.oracle_report = oracle.Report();
  if (obs != nullptr && lease_local) DumpMetrics(*obs, *d);
  return res;
}

}  // namespace
}  // namespace mrp::bench

int main(int argc, char** argv) {
  using namespace mrp;          // NOLINT
  using namespace mrp::bench;   // NOLINT
  const bool quick = QuickMode(argc, argv);
  double write_lambda = 1000;
  if (const char* v = FlagValue(argc, argv, "--write-lambda")) {
    write_lambda = std::atof(v);
  }
  const Duration warmup = quick ? Millis(500) : Seconds(1);
  const Duration measure = quick ? Seconds(2) : Seconds(8);
  Observability obs = SetupObservability(argc, argv);

  PrintHeader("session_reads: lease-local vs through-ring reads",
              "read-only session client, equal background write lambda = " +
                  std::to_string(static_cast<int>(write_lambda)) + "/s");

  ScenarioResult ring =
      RunScenario(/*lease_local=*/false, write_lambda, warmup, measure, &obs);
  ScenarioResult local =
      RunScenario(/*lease_local=*/true, write_lambda, warmup, measure, &obs);

  std::printf("\n%-14s %12s %10s %10s %10s\n", "path", "reads/s", "p50 ms",
              "p99 ms", "served");
  std::printf("%-14s %12.0f %10.3f %10.3f %10llu\n", "through-ring",
              ring.reads_per_s, ring.latency.p50_ms, ring.latency.p99_ms,
              static_cast<unsigned long long>(ring.ring_reads));
  std::printf("%-14s %12.0f %10.3f %10.3f %10llu\n", "lease-local",
              local.reads_per_s, local.latency.p50_ms, local.latency.p99_ms,
              static_cast<unsigned long long>(local.local_reads));

  const double ratio =
      ring.reads_per_s > 0 ? local.reads_per_s / ring.reads_per_s : 0;
  std::printf("\nspeedup: %.1fx (local fallbacks: %llu)\n", ratio,
              static_cast<unsigned long long>(local.fallback_reads));

  bool ok = true;
  if (!ring.oracle_ok || !local.oracle_ok) {
    std::printf("ORACLE VIOLATION\n%s\n%s\n", ring.oracle_report.c_str(),
                local.oracle_report.c_str());
    ok = false;
  }
  if (ratio < 5.0) {
    std::printf("FAIL: lease-local reads below the 5x bar\n");
    ok = false;
  }
  if (local.local_reads == 0) {
    std::printf("FAIL: no lease-local reads were served\n");
    ok = false;
  }
  if (ok) std::printf("OK: >= 5x, oracles clean\n");
  DumpObservability(obs, nullptr);
  return ok ? 0 : 1;
}
