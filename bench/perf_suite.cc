// Pinned-seed performance suite: a fixed matrix of deterministic
// scenarios (codec encode/decode, raw scheduler churn, single-ring and
// multi-ring simulated deployments) measured against the wall clock and
// emitted as machine-readable JSON (BENCH_core.json at the repo root is
// the committed baseline). tools/perf/compare.py diffs a candidate run
// against the baseline and fails CI on regressions; see docs/PERF.md
// for the schema and the gate policy.
//
// The workloads are deterministic (fixed seeds, closed-loop clients) so
// run-to-run variance comes only from the machine, not the work.
// Latency percentiles are over per-op times measured in chunks: each
// chunk is timed once and contributes chunk/ops as one sample, which
// keeps timer overhead out of the measured path.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "net/codec.h"
#include "paxos/value.h"
#include "ringpaxos/messages.h"
#include "session/client.h"
#include "session/lease.h"
#include "sim/scheduler.h"
#include "smr/replica.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT

// The one wall-clock read in the suite. Sim benches elsewhere run on
// deterministic sim time; a perf gate has to measure real elapsed time.
std::uint64_t WallNowNs() {
  const auto now =
      // mrp-lint: allow(wall-clock) -- perf harness measures real elapsed time
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

// Defeats dead-code elimination of measured work.
volatile std::uint64_t g_sink = 0;

struct ScenarioResult {
  std::string name;
  std::string unit;  // "msgs/s", "bytes/s" or "events/s"
  double rate = 0;
  double p50_ns = 0;  // per-op wall time
  double p99_ns = 0;
  std::uint64_t ops = 0;
};

ScenarioResult Finish(std::string name, std::string unit, std::uint64_t ops,
                      double units_done, std::uint64_t wall_ns,
                      const Histogram& per_op) {
  ScenarioResult r;
  r.name = std::move(name);
  r.unit = std::move(unit);
  r.ops = ops;
  r.rate = wall_ns > 0 ? units_done * 1e9 / static_cast<double>(wall_ns) : 0;
  const LatencySummary ls = Summarize(per_op);
  r.p50_ns = ls.p50_ns;
  r.p99_ns = ls.p99_ns;
  return r;
}

paxos::ClientMsg MakeMsg(std::size_t payload) {
  paxos::ClientMsg m;
  m.group = 1;
  m.proposer = 2;
  m.seq = 3;
  m.payload.assign(payload, 0x5a);
  m.payload_size = static_cast<std::uint32_t>(payload);
  return m;
}

ringpaxos::P2A MakeP2A(std::size_t payload) {
  return ringpaxos::P2A{1, 2, 1000, 42,
                        paxos::Value::Batch({MakeMsg(payload)}),
                        {{998, 40}, {999, 41}},
                        {0, 1}};
}

// ---- codec scenarios: bytes/s over an 8 kB-payload P2A ----

ScenarioResult CodecEncode(bool quick) {
  const auto msg = MakeP2A(8 * 1024);
  const std::size_t frame_size = net::EncodeMessage(msg).size();
  const int chunks = quick ? 40 : 400;
  const int per_chunk = 64;
  Histogram per_op;
  std::uint64_t ops = 0;
  const std::uint64_t t0 = WallNowNs();
  for (int c = 0; c < chunks; ++c) {
    const std::uint64_t c0 = WallNowNs();
    for (int i = 0; i < per_chunk; ++i) {
      Bytes frame = net::EncodeMessage(msg);
      g_sink += frame.size();
    }
    const std::uint64_t c1 = WallNowNs();
    per_op.RecordValue((c1 - c0) / per_chunk);
    ops += per_chunk;
  }
  const std::uint64_t wall = WallNowNs() - t0;
  return Finish("codec_encode_p2a_8k", "bytes/s", ops,
                static_cast<double>(ops) * static_cast<double>(frame_size),
                wall, per_op);
}

// `view` = false decodes with the copying span overload, true with the
// zero-copy shared-frame overload. Both scenarios are committed to the
// baseline so the JSON itself documents the zero-copy win.
ScenarioResult CodecDecode(bool quick, bool view) {
  const auto shared = std::make_shared<const Bytes>(
      net::EncodeMessage(MakeP2A(8 * 1024)));
  const Bytes& frame = *shared;
  const int chunks = quick ? 40 : 400;
  const int per_chunk = 64;
  Histogram per_op;
  std::uint64_t ops = 0;
  const std::uint64_t t0 = WallNowNs();
  for (int c = 0; c < chunks; ++c) {
    const std::uint64_t c0 = WallNowNs();
    for (int i = 0; i < per_chunk; ++i) {
      MessagePtr msg = view ? net::DecodeMessage(shared)
                            : net::DecodeMessage(std::span<const std::uint8_t>(frame));
      g_sink += msg != nullptr ? 1 : 0;
    }
    const std::uint64_t c1 = WallNowNs();
    per_op.RecordValue((c1 - c0) / per_chunk);
    ops += per_chunk;
  }
  const std::uint64_t wall = WallNowNs() - t0;
  return Finish(view ? "codec_decode_p2a_8k_view" : "codec_decode_p2a_8k_copy",
                "bytes/s", ops,
                static_cast<double>(ops) * static_cast<double>(frame.size()),
                wall, per_op);
}

// ---- raw scheduler churn: events/s ----

ScenarioResult SchedulerEvents(bool quick) {
  sim::Scheduler sched;
  std::function<void()> tick = [&] { sched.After(Micros(1), tick); };
  sched.After(Micros(1), tick);
  const int chunks = quick ? 50 : 400;
  const int per_chunk = 4096;
  Histogram per_op;
  std::uint64_t ops = 0;
  const std::uint64_t t0 = WallNowNs();
  for (int c = 0; c < chunks; ++c) {
    const std::uint64_t c0 = WallNowNs();
    for (int i = 0; i < per_chunk; ++i) sched.RunOne();
    const std::uint64_t c1 = WallNowNs();
    per_op.RecordValue((c1 - c0) / per_chunk);
    ops += per_chunk;
  }
  const std::uint64_t wall = WallNowNs() - t0;
  return Finish("sim_scheduler_events", "events/s", ops,
                static_cast<double>(ops), wall, per_op);
}

// ---- deployment scenarios: delivered msgs/s of simulated clusters ----
// Exercises the whole stack the optimizations target: pooled packet
// records in SimNetwork, protocol execution, merge delivery.

ScenarioResult Deployment(const char* name, int n_rings, bool quick) {
  multiring::DeploymentOptions opts;
  opts.n_rings = n_rings;
  opts.lambda_per_sec = 20000;
  opts.delta = Millis(1);
  multiring::SimDeployment d(opts);
  std::vector<int> rings;
  for (int r = 0; r < n_rings; ++r) rings.push_back(r);
  auto* learner = d.AddMergeLearner(rings);
  for (int r = 0; r < n_rings; ++r) {
    AddClosedLoopClients(d, r, /*clients=*/2, /*window=*/8, /*payload=*/8192);
  }
  d.Start();
  // Warmup until the instance pipeline and batching reach steady state;
  // short quick runs are biased slow without it.
  d.RunFor(Seconds(1));
  const int chunks = quick ? 10 : 60;
  Histogram per_op;
  std::uint64_t ops = 0;
  std::uint64_t last = learner->total_delivered();
  const std::uint64_t t0 = WallNowNs();
  for (int c = 0; c < chunks; ++c) {
    const std::uint64_t c0 = WallNowNs();
    d.RunFor(Millis(100));
    const std::uint64_t c1 = WallNowNs();
    const std::uint64_t now = learner->total_delivered();
    const std::uint64_t delivered = now - last;
    last = now;
    if (delivered > 0) per_op.RecordValue((c1 - c0) / delivered);
    ops += delivered;
  }
  const std::uint64_t wall = WallNowNs() - t0;
  return Finish(name, "msgs/s", ops, static_cast<double>(ops), wall, per_op);
}

// ---- session scenario: lease-local reads/s of the control plane ----
// Pins the session subsystem (SessionRead round-trips, SessionTable
// bookkeeping, lease renewal chain) into the committed baseline so
// tools/perf/compare.py catches both rate regressions and unit/schema
// drift in the session path (docs/SESSIONS.md).

ScenarioResult SessionLocalReads(bool quick) {
  multiring::DeploymentOptions opts;
  opts.n_rings = 1;
  opts.lambda_per_sec = 8000;
  opts.batch_timeout = Millis(1);
  multiring::SimDeployment d(opts);
  std::vector<sim::SimNode*> replica_nodes;
  for (int r = 0; r < 2; ++r) {
    auto& node = d.net().AddNode();
    smr::ReplicaConfig rc;
    rc.partition = 0;
    rc.partition_ring.ring = d.ring(0);
    rc.respond = (r == 0);
    rc.sessions = true;
    rc.serve_local_reads = (r == 1);
    node.BindProtocol(std::make_unique<smr::Replica>(rc));
    replica_nodes.push_back(&node);
    d.net().Subscribe(node.self(), d.ring(0).data_channel);
    d.net().Subscribe(node.self(), d.ring(0).control_channel);
  }
  {
    auto& node = d.net().AddNode();
    session::LeaseGrantorConfig lc;
    lc.ring = d.ring(0).ring;
    lc.group = d.ring(0).group;
    lc.holder = replica_nodes[1]->self();
    node.BindProtocol(std::make_unique<session::LeaseGrantor>(lc));
    d.net().Subscribe(node.self(), d.ring(0).data_channel);
    d.net().Subscribe(node.self(), d.ring(0).control_channel);
  }
  AddOpenLoopClient(d, 0, {{TimePoint(0), 1000}}, /*payload=*/512);
  session::SessionClient* client = nullptr;
  {
    sim::NodeSpec spec;
    spec.infinite_cpu = true;
    auto& node = d.net().AddNode(spec);
    session::SessionClientConfig sc;
    sc.session_id = 1;
    sc.ring = d.ring(0);
    sc.read_replica = replica_nodes[1]->self();
    sc.window = 8;
    sc.read_ratio = 1.0;
    auto cl = std::make_unique<session::SessionClient>(sc);
    client = cl.get();
    node.BindProtocol(std::move(cl));
  }
  d.Start();
  d.RunFor(Seconds(1));  // session open + first lease grant + warmup
  const int chunks = quick ? 10 : 60;
  Histogram per_op;
  std::uint64_t ops = 0;
  std::uint64_t last = client->local_reads();
  const std::uint64_t t0 = WallNowNs();
  for (int c = 0; c < chunks; ++c) {
    const std::uint64_t c0 = WallNowNs();
    d.RunFor(Millis(100));
    const std::uint64_t c1 = WallNowNs();
    const std::uint64_t now = client->local_reads();
    const std::uint64_t served = now - last;
    last = now;
    if (served > 0) per_op.RecordValue((c1 - c0) / served);
    ops += served;
  }
  const std::uint64_t wall = WallNowNs() - t0;
  return Finish("session_local_reads", "reads/s", ops,
                static_cast<double>(ops), wall, per_op);
}

void WriteJson(const char* path, const char* mode,
               const std::vector<ScenarioResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_suite: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"mrp-bench-core/v1\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n  \"scenarios\": {\n", mode);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    \"%s\": {\"unit\": \"%s\", \"rate\": %.1f, "
                 "\"p50_ns\": %.0f, \"p99_ns\": %.0f, \"ops\": %" PRIu64 "}%s\n",
                 r.name.c_str(), r.unit.c_str(), r.rate, r.p50_ns, r.p99_ns,
                 r.ops, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const char* out = FlagValue(argc, argv, "--out");
  if (out == nullptr) out = "BENCH_core.json";

  PrintHeader("Core performance suite",
              quick ? "quick mode (CI smoke): shorter runs, noisier"
                    : "full mode: baseline-quality runs");

  std::vector<ScenarioResult> results;
  results.push_back(CodecEncode(quick));
  results.push_back(CodecDecode(quick, /*view=*/false));
  results.push_back(CodecDecode(quick, /*view=*/true));
  results.push_back(SchedulerEvents(quick));
  results.push_back(Deployment("ring_single", 1, quick));
  results.push_back(Deployment("multiring_merge", 2, quick));
  results.push_back(SessionLocalReads(quick));

  std::printf("%-26s %14s %10s %12s %12s %10s\n", "scenario", "rate", "unit",
              "p50(ns)", "p99(ns)", "ops");
  for (const auto& r : results) {
    std::printf("%-26s %14.0f %10s %12.0f %12.0f %10" PRIu64 "\n",
                r.name.c_str(), r.rate, r.unit.c_str(), r.p50_ns, r.p99_ns,
                r.ops);
  }

  WriteJson(out, quick ? "quick" : "full", results);
  std::printf("\njson -> %s\n", out);
  return 0;
}
