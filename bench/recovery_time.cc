// Recovery time and throughput dip: peer snapshot transfer vs log
// replay (docs/RECOVERY.md). A two-ring deployment delivers L messages,
// then a recovery-enabled learner crash-loses its state and comes back
// either (a) bootstrapping from its peer's checkpoint — resuming at the
// cut — or (b) cold-starting from instance 0 and replaying the whole
// retained log (frontier-gated trimming keeps it available). For each
// log length and snapshot interval the bench reports the sim time from
// revive to full catch-up, the number of messages the revived learner
// had to (re)apply, and the reference learner's delivery-rate dip while
// the recovery was in flight. The claim under test: snapshot recovery
// is bounded work independent of L, log replay is linear in L.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "check/oracles.h"
#include "check/recovery_oracle.h"
#include "recovery/sim_harness.h"

namespace {

using namespace mrp;         // NOLINT
using namespace mrp::bench;  // NOLINT

struct Result {
  const char* mode = "";
  std::uint64_t log_len = 0;
  std::int64_t snap_interval_ms = 0;
  double recovery_ms = 0;      // revive -> caught up with the reference
  std::uint64_t reapplied = 0; // messages (re)applied below the crash point
  std::uint64_t chunks = 0;    // snapshot chunks transferred
  double ref_rate_steady = 0;  // reference msg/s before the crash
  double ref_rate_dip = 0;     // reference msg/s while recovering
  bool ok = false;             // oracle clean + catch-up reached
  // Catch-up never completed: with a long history the acceptors'
  // retained log no longer reaches instance 0 (trim_keep instances
  // below the watermark), so log replay is not merely slow but
  // impossible — the scenario checkpoints exist for.
  bool stuck = false;
};

Result RunScenario(bool snapshot_mode, std::uint64_t log_len,
                   Duration snap_interval, std::uint64_t seed) {
  Result res;
  res.mode = snapshot_mode ? "snapshot" : "log-replay";
  res.log_len = log_len;
  res.snap_interval_ms = snap_interval.count() / 1'000'000;

  multiring::DeploymentOptions opts;
  opts.n_rings = 2;
  opts.ring_size = 2;
  opts.net.seed = seed;
  opts.frontier_gated_trim = true;
  multiring::SimDeployment d(opts);
  const std::vector<int> rings = {0, 1};

  check::OracleSuite suite;
  check::RecoveryOracle oracle(&suite);
  std::vector<std::unique_ptr<recovery::HashApp>> apps;

  auto& coord_node = d.net().AddNode();
  recovery::SimRecoveryNode rec_a;  // reference + snapshot server
  recovery::SimRecoveryNode rec_b;  // crash target

  auto make_opts = [&](bool target) {
    recovery::RecoverableLearner::Options ro;
    apps.push_back(std::make_unique<recovery::HashApp>());
    auto* app = apps.back().get();
    ro.app = app;
    ro.coordinator = coord_node.self();
    if (target) {
      if (snapshot_mode) ro.fetch.peers = {rec_a.node->self()};
      ro.merge.on_deliver = [app, &oracle](GroupId g,
                                           const paxos::ClientMsg& m) {
        oracle.OnRecoveredDeliver(g, m);
        app->Apply(g, m);
      };
      ro.on_restore = [&oracle](std::uint64_t resume,
                                const recovery::Checkpoint&) {
        oracle.BeginRecovered(resume);
      };
    } else {
      ro.merge.on_deliver = [app, &oracle](GroupId g,
                                           const paxos::ClientMsg& m) {
        oracle.OnReferenceDeliver(g, m);
        app->Apply(g, m);
      };
    }
    return ro;
  };

  rec_a = recovery::AddRecoverableLearner(d, rings, make_opts(false));
  rec_b = recovery::AddRecoverableLearner(d, rings, make_opts(true));
  recovery::BindCheckpointCoordinator(
      d, coord_node, {rec_a.node->self(), rec_b.node->self()}, snap_interval);
  auto* app_a = apps[0].get();
  auto* app_b = apps[1].get();

  for (int r : rings) {
    for (int c = 0; c < 4; ++c) {
      ringpaxos::ProposerConfig pc;
      pc.payload_size = 512;
      pc.max_outstanding = 64;
      d.AddProposer(r, pc);
    }
  }
  d.Start();

  // Phase 1: deliver L messages at the reference.
  const Duration step = Millis(20);
  const Duration phase_cap = Seconds(120);
  TimePoint t{0};
  while (app_a->count() < log_len && t < TimePoint{0} + phase_cap) {
    d.RunFor(step);
    t += step;
  }
  if (app_a->count() < log_len) return res;  // never reached target rate
  const double steady_window_s =
      static_cast<double>(t.count()) / 1e9;
  res.ref_rate_steady = static_cast<double>(app_a->count()) / steady_window_s;

  // Phase 2: crash the target, let traffic continue briefly.
  rec_b.node->SetDown(true);
  d.RunFor(Millis(100));

  // Phase 3: revive and measure catch-up. In log-replay mode the fetch
  // peer list is empty, so the manager completes immediately with an
  // empty checkpoint and the merge cold-starts at instance 0.
  recovery::ReviveRecoverableLearner(d, rec_b, rings, make_opts(true));
  app_b = apps.back().get();  // the revived learner got a fresh app
  rec_b.node->SetDown(false);
  rec_b.node->Start();
  const TimePoint revive_at = d.net().now();
  const std::uint64_t a_at_revive = app_a->count();

  const Duration recover_cap = Seconds(120);
  while (app_b->count() < app_a->count() &&
         d.net().now() < revive_at + recover_cap) {
    d.RunFor(step);
  }
  const TimePoint caught_up_at = d.net().now();
  if (app_b->count() < app_a->count()) {
    res.stuck = true;  // replay cannot reach a prefix that was trimmed
    return res;
  }

  res.recovery_ms =
      static_cast<double>((caught_up_at - revive_at).count()) / 1e6;
  // Snapshot mode restores the app counter to the checkpoint, so the
  // post-restore count difference is exactly what had to be reapplied
  // below + beyond the crash point; subtract the live suffix delivered
  // since revive to isolate the replayed backlog.
  const std::uint64_t live_suffix = app_a->count() - a_at_revive;
  const std::uint64_t applied_since_restore =
      app_b->count() - rec_b.learner->resume_index();
  res.reapplied = applied_since_restore > live_suffix
                      ? applied_since_restore - live_suffix
                      : 0;
  res.chunks = rec_b.learner->fetcher().chunks_received();
  const double recovery_window_s =
      static_cast<double>((caught_up_at - revive_at).count()) / 1e9;
  res.ref_rate_dip =
      recovery_window_s > 0
          ? static_cast<double>(app_a->count() - a_at_revive) /
                recovery_window_s
          : res.ref_rate_steady;

  oracle.Finish();
  res.ok = suite.ok();
  if (!res.ok) std::fprintf(stderr, "%s", suite.Report().c_str());
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);

  const std::vector<std::uint64_t> log_lens =
      quick ? std::vector<std::uint64_t>{2'000}
            : std::vector<std::uint64_t>{5'000, 20'000, 50'000};
  const std::vector<Duration> snap_intervals =
      quick ? std::vector<Duration>{Millis(100)}
            : std::vector<Duration>{Millis(100), Millis(400)};

  PrintHeader("Recovery time: peer snapshot transfer vs log replay",
              "Crash after L delivered messages; time from revive to full\n"
              "catch-up with the never-crashed reference learner. Snapshot\n"
              "recovery must stay flat in L; log replay grows with L.");
  std::printf("%-10s %8s %8s | %11s %10s %7s | %10s %10s | %3s\n", "mode",
              "L", "snap_ms", "recover_ms", "reapplied", "chunks", "ref_msg/s",
              "dip_msg/s", "ok");

  bool all_ok = true;
  bool any_log_gone = false;
  for (std::uint64_t len : log_lens) {
    for (Duration interval : snap_intervals) {
      const Result r = RunScenario(true, len, interval, /*seed=*/len + 1);
      std::printf("%-10s %8llu %8lld | %11.1f %10llu %7llu | %10.0f %10.0f | %3s\n",
                  r.mode, static_cast<unsigned long long>(r.log_len),
                  static_cast<long long>(r.snap_interval_ms), r.recovery_ms,
                  static_cast<unsigned long long>(r.reapplied),
                  static_cast<unsigned long long>(r.chunks),
                  r.ref_rate_steady, r.ref_rate_dip, r.ok ? "yes" : "NO");
      all_ok = all_ok && r.ok;
    }
    // The log-replay baseline has no snapshot interval dimension.
    const Result r = RunScenario(false, len, Millis(100), /*seed=*/len + 1);
    if (r.stuck) {
      // Not a bench failure: the logical instance space (skips included)
      // has outrun trim_keep, the acceptors' retained logs no longer
      // reach instance 0, and a cold start has nothing to replay from.
      // This is the outcome the snapshot rows above exist to avoid.
      any_log_gone = true;
      std::printf("%-10s %8llu %8s | %11s %10s %7s | %10.0f %10s | %3s\n",
                  r.mode, static_cast<unsigned long long>(r.log_len), "-",
                  "log gone*", "-", "-", r.ref_rate_steady, "-", "n/a");
    } else {
      std::printf("%-10s %8llu %8s | %11.1f %10llu %7llu | %10.0f %10.0f | %3s\n",
                  r.mode, static_cast<unsigned long long>(r.log_len), "-",
                  r.recovery_ms, static_cast<unsigned long long>(r.reapplied),
                  static_cast<unsigned long long>(r.chunks), r.ref_rate_steady,
                  r.ref_rate_dip, r.ok ? "yes" : "NO");
      all_ok = all_ok && r.ok;
    }
  }

  std::printf("\nExpected shape: snapshot-mode recover_ms and reapplied stay\n"
              "roughly constant across L (the transfer moves a fixed-size app\n"
              "snapshot and the learner resumes at the cut), while log-replay\n"
              "reapplied equals the full backlog and its recover_ms grows\n"
              "with L. A finer snapshot interval shrinks the live suffix the\n"
              "recovered learner still has to stream.\n");
  if (any_log_gone) {
    std::printf("\n* log gone: by crash time the ring's logical instance ids\n"
                "  (skip instances included) had outrun the acceptors'\n"
                "  trim_keep retention, so the log no longer reaches instance\n"
                "  0 and cold-start replay is impossible — not merely slow.\n"
                "  Snapshot recovery at the same L still completes because\n"
                "  frontier-gated trimming retains everything above the\n"
                "  stable checkpoint frontier.\n");
  }
  return all_ok ? 0 : 1;
}
