// Figure 1: latency vs throughput of a single Ring Paxos instance, in
// In-memory and Recoverable (disk) modes. The paper's result: In-memory
// Ring Paxos is CPU-bound at the coordinator (~700 Mbps, coordinator at
// ~98% CPU); Recoverable Ring Paxos is bound by the acceptors' disk
// bandwidth (~400 Mbps) while the coordinator sits near 60% CPU. Adding
// acceptors cannot raise either ceiling.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace {

using namespace mrp;                 // NOLINT
using namespace mrp::bench;          // NOLINT
using multiring::DeploymentOptions;
using multiring::SimDeployment;

Measurement RunPoint(bool disk, int clients, Duration warm, Duration measure) {
  DeploymentOptions opts;
  opts.lambda_per_sec = 0;  // plain Ring Paxos
  opts.disk = disk;
  SimDeployment d(opts);
  auto* learner = d.AddRingLearner(0, /*acks=*/true);
  AddClosedLoopClients(d, 0, clients, /*window=*/2, /*payload=*/8 * 1024);
  d.Start();

  d.RunFor(warm);
  learner->delivered().TakeWindow();
  learner->latency().Reset();
  d.coordinator_node(0)->TakeCpuUtilisation();
  d.acceptor_node(0, 1)->TakeCpuUtilisation();

  d.RunFor(measure);
  const auto w = learner->delivered().TakeWindow();
  Measurement m;
  m.mbps = w.Mbps(measure);
  m.msg_per_s = w.MsgPerSec(measure);
  m.latency_ms = Summarize(learner->latency()).trimmed_mean_ms;
  m.max_cpu = std::max(d.coordinator_node(0)->TakeCpuUtilisation(),
                       d.acceptor_node(0, 1)->TakeCpuUtilisation());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const Duration warm = quick ? Seconds(1) : Seconds(2);
  const Duration measure = quick ? Seconds(2) : Seconds(4);
  const std::vector<int> sweep =
      quick ? std::vector<int>{1, 8, 48} : std::vector<int>{1, 2, 4, 8, 16, 32, 48, 64};

  PrintHeader("Figure 1 - In-memory vs Recoverable Ring Paxos (single ring)",
              "Latency vs per-ring delivery throughput; coordinator CPU shows\n"
              "the CPU-bound (in-memory) vs disk-bound (recoverable) regimes.");

  std::printf("%-12s %8s %12s %10s %12s %10s\n", "mode", "clients",
              "tput(Mbps)", "msg/s", "latency(ms)", "coordCPU%");
  for (bool disk : {false, true}) {
    for (int clients : sweep) {
      const auto m = RunPoint(disk, clients, warm, measure);
      std::printf("%-12s %8d %12.1f %10.0f %12.2f %10.1f\n",
                  disk ? "Recoverable" : "In-memory", clients, m.mbps, m.msg_per_s,
                  m.latency_ms, m.max_cpu * 100);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: in-memory saturates ~700 Mbps at ~100%% coordinator\n"
              "CPU; recoverable saturates ~400 Mbps with coordinator near 60%%.\n");
  return 0;
}
