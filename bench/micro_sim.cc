// Micro-benchmarks of the simulator substrate: raw scheduler event
// throughput, end-to-end simulated message cost, and the measurement
// primitives (histogram record, instance window).
#include <benchmark/benchmark.h>

#include <memory>

#include "common/instance_window.h"
#include "common/stats.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace {

using namespace mrp;  // NOLINT

void BM_SchedulerEventChurn(benchmark::State& state) {
  sim::Scheduler sched;
  std::int64_t events = 0;
  std::function<void()> tick = [&] {
    ++events;
    sched.After(Micros(1), tick);
  };
  sched.After(Micros(1), tick);
  for (auto _ : state) {
    sched.RunOne();
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_SchedulerEventChurn);

struct PingMsg final : MessageBase {
  std::size_t WireSize() const override { return 128; }
  const char* TypeName() const override { return "bench.Ping"; }
};

class PingPong final : public Protocol {
 public:
  explicit PingPong(NodeId peer) : peer_(peer) {}
  void OnStart(Env& env) override { env.Send(peer_, MakeMessage<PingMsg>()); }
  void OnMessage(Env& env, NodeId from, const MessagePtr&) override {
    ++count;
    env.Send(from, MakeMessage<PingMsg>());
  }
  NodeId peer_;
  std::uint64_t count = 0;
};

void BM_SimulatedMessageRoundtrip(benchmark::State& state) {
  sim::SimNetwork net;
  auto& a = net.AddNode();
  auto& b = net.AddNode();
  a.BindProtocol(std::make_unique<PingPong>(b.self()));
  b.BindProtocol(std::make_unique<PingPong>(a.self()));
  net.StartAll();
  std::int64_t msgs = 0;
  for (auto _ : state) {
    net.RunFor(Millis(10));
    msgs += 2 * 10;  // ~1 roundtrip per ~0.25ms simulated
  }
  state.SetItemsProcessed(msgs);
}
BENCHMARK(BM_SimulatedMessageRoundtrip);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  std::uint64_t v = 12345;
  for (auto _ : state) {
    h.RecordValue(v);
    v = v * 6364136223846793005ULL + 1;
    v >>= 34;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(h.count()));
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram h;
  std::uint64_t v = 12345;
  for (int i = 0; i < 100000; ++i) {
    h.RecordValue(v % 1000000);
    v = v * 6364136223846793005ULL + 1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Quantile(0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_InstanceWindowInOrder(benchmark::State& state) {
  InstanceWindow<int> w;
  InstanceId next = 0;
  for (auto _ : state) {
    w.Insert(next, 1);
    benchmark::DoNotOptimize(w.Pop());
    ++next;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(next));
}
BENCHMARK(BM_InstanceWindowInOrder);

void BM_InstanceWindowOutOfOrder(benchmark::State& state) {
  InstanceWindow<int> w;
  InstanceId base = 0;
  const std::size_t kBatch = 64;
  for (auto _ : state) {
    // Insert a reversed batch, then drain.
    for (std::size_t i = kBatch; i-- > 0;) {
      w.Insert(base + i, static_cast<int>(i));
    }
    while (w.Peek() != nullptr) benchmark::DoNotOptimize(w.Pop());
    base += kBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(base));
}
BENCHMARK(BM_InstanceWindowOutOfOrder);

}  // namespace

BENCHMARK_MAIN();
