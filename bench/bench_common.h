// Shared infrastructure for the figure-reproduction benchmarks: aligned
// table printing, warmup/measure sweep runners, and stat collection.
// Each bench binary reproduces one figure of the paper and prints the
// same series the figure plots (see EXPERIMENTS.md for the mapping).
#pragma once

#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "multiring/merge_learner.h"
#include "multiring/sim_deployment.h"
#include "ringpaxos/learner.h"
#include "ringpaxos/proposer.h"

namespace mrp::bench {

inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return std::getenv("MRP_BENCH_QUICK") != nullptr;
}

// --csv <dir>: time-series benches additionally write plottable CSV
// files into <dir> (one file per sub-experiment).
inline const char* CsvDir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return argv[i + 1];
  }
  return nullptr;
}

inline const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

// Observability wiring shared by every bench binary (docs/OBSERVABILITY.md):
//   --trace <file>   (or MRP_TRACE=<file>)    enable the structured tracer;
//     <file> gets the JSONL stream, <file>.chrome.json the chrome://tracing
//     view of the same events.
//   --metrics <file> (or MRP_METRICS=<file>)  dump a metrics-registry
//     snapshot of the whole deployment (network + every node) as JSON.
// Traces are driven off sim time, so a given seed yields an identical file.
struct Observability {
  std::string trace_path;    // empty = tracing disabled
  std::string metrics_path;  // empty = no metrics dump
};

inline Observability SetupObservability(int argc, char** argv) {
  Observability obs;
  if (const char* p = FlagValue(argc, argv, "--trace")) {
    obs.trace_path = p;
  } else if (const char* e = std::getenv("MRP_TRACE")) {
    obs.trace_path = e;
  }
  if (const char* p = FlagValue(argc, argv, "--metrics")) {
    obs.metrics_path = p;
  } else if (const char* e = std::getenv("MRP_METRICS")) {
    obs.metrics_path = e;
  }
  if (!obs.trace_path.empty()) {
    Tracer::Instance().Clear();
    Tracer::Instance().Enable();
  }
  return obs;
}

// Flush the accumulated trace; call once, at the end of main.
inline void DumpTrace(const Observability& obs) {
  if (obs.trace_path.empty()) return;
  Tracer& tracer = Tracer::Instance();
  if (tracer.WriteJsonlFile(obs.trace_path)) {
    std::printf("trace: %zu events -> %s\n", tracer.size(),
                obs.trace_path.c_str());
  } else {
    std::fprintf(stderr, "trace: cannot write %s\n", obs.trace_path.c_str());
  }
  const std::string chrome = obs.trace_path + ".chrome.json";
  if (tracer.WriteChromeTraceFile(chrome)) {
    std::printf("trace: chrome://tracing view -> %s\n", chrome.c_str());
  }
}

// Dump a whole-deployment metrics snapshot; call while `d` is still
// alive (per-node registries die with their SimNodes).
inline void DumpMetrics(const Observability& obs,
                        multiring::SimDeployment& d) {
  if (obs.metrics_path.empty()) return;
  std::ofstream out(obs.metrics_path);
  if (out) {
    d.net().WriteMetricsJson(out);
    std::printf("metrics: snapshot -> %s\n", obs.metrics_path.c_str());
  } else {
    std::fprintf(stderr, "metrics: cannot write %s\n",
                 obs.metrics_path.c_str());
  }
}

inline void DumpObservability(const Observability& obs,
                              multiring::SimDeployment* d) {
  if (d != nullptr) DumpMetrics(obs, *d);
  DumpTrace(obs);
}

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", title.c_str(), what.c_str());
  std::printf("================================================================\n");
}

// Latency percentiles of a Histogram of nanosecond samples. The single
// place where benches (and the perf suite) turn histograms into
// reported numbers, so the quantile set, the trim policy (5% highest
// discarded, as in the paper) and the ns->ms scaling stay consistent.
struct LatencySummary {
  std::uint64_t count = 0;
  double p10_ms = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double trimmed_mean_ms = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
};

// Every quantile comes straight off the fixed log-scale buckets, so
// summarising 10^6+ open-loop samples is O(buckets) — no sorted copy of
// the raw samples exists anywhere. The price is the bucket width
// (~2^-4 relative, see stats.h), bounded by the error tests in
// tests/metrics_test.cc; p99.9 needs that tail resolution the most.
inline LatencySummary Summarize(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.p50_ns = h.Quantile(0.50);
  s.p99_ns = h.Quantile(0.99);
  s.p999_ns = h.Quantile(0.999);
  s.p10_ms = h.Quantile(0.10) / 1e6;
  s.p50_ms = s.p50_ns / 1e6;
  s.p90_ms = h.Quantile(0.90) / 1e6;
  s.p99_ms = s.p99_ns / 1e6;
  s.p999_ms = s.p999_ns / 1e6;
  s.trimmed_mean_ms = h.TrimmedMean(0.05) / 1e6;
  return s;
}

// One throughput/latency measurement of a deployment.
struct Measurement {
  double mbps = 0;       // aggregated application goodput
  double msg_per_s = 0;
  double latency_ms = 0; // trimmed mean (5% highest discarded, as in the paper)
  double max_cpu = 0;    // most-loaded node, in [0,1]
};

// Attaches `clients` closed-loop proposers to ring `ring_idx`.
inline void AddClosedLoopClients(multiring::SimDeployment& d, int ring_idx,
                                 int clients, std::size_t window,
                                 std::uint32_t payload) {
  for (int i = 0; i < clients; ++i) {
    ringpaxos::ProposerConfig pc;
    pc.max_outstanding = window;
    pc.payload_size = payload;
    d.AddProposer(ring_idx, pc);
  }
}

// Attaches an open-loop Poisson proposer with a step schedule.
inline ringpaxos::Proposer* AddOpenLoopClient(
    multiring::SimDeployment& d, int ring_idx,
    std::vector<ringpaxos::ProposerConfig::RatePoint> schedule,
    std::uint32_t payload, std::size_t window = 0, double osc_amplitude = 0,
    Duration osc_period = Seconds(20)) {
  ringpaxos::ProposerConfig pc;
  pc.schedule = std::move(schedule);
  pc.payload_size = payload;
  pc.max_outstanding = window;
  pc.osc_amplitude = osc_amplitude;
  pc.osc_period = osc_period;
  return d.AddProposer(ring_idx, pc);
}

}  // namespace mrp::bench
