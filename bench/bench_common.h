// Shared infrastructure for the figure-reproduction benchmarks: aligned
// table printing, warmup/measure sweep runners, and stat collection.
// Each bench binary reproduces one figure of the paper and prints the
// same series the figure plots (see EXPERIMENTS.md for the mapping).
#pragma once

#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "multiring/merge_learner.h"
#include "multiring/sim_deployment.h"
#include "ringpaxos/learner.h"
#include "ringpaxos/proposer.h"

namespace mrp::bench {

inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return std::getenv("MRP_BENCH_QUICK") != nullptr;
}

// --csv <dir>: time-series benches additionally write plottable CSV
// files into <dir> (one file per sub-experiment).
inline const char* CsvDir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return argv[i + 1];
  }
  return nullptr;
}

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", title.c_str(), what.c_str());
  std::printf("================================================================\n");
}

// One throughput/latency measurement of a deployment.
struct Measurement {
  double mbps = 0;       // aggregated application goodput
  double msg_per_s = 0;
  double latency_ms = 0; // trimmed mean (5% highest discarded, as in the paper)
  double max_cpu = 0;    // most-loaded node, in [0,1]
};

// Attaches `clients` closed-loop proposers to ring `ring_idx`.
inline void AddClosedLoopClients(multiring::SimDeployment& d, int ring_idx,
                                 int clients, std::size_t window,
                                 std::uint32_t payload) {
  for (int i = 0; i < clients; ++i) {
    ringpaxos::ProposerConfig pc;
    pc.max_outstanding = window;
    pc.payload_size = payload;
    d.AddProposer(ring_idx, pc);
  }
}

// Attaches an open-loop Poisson proposer with a step schedule.
inline ringpaxos::Proposer* AddOpenLoopClient(
    multiring::SimDeployment& d, int ring_idx,
    std::vector<ringpaxos::ProposerConfig::RatePoint> schedule,
    std::uint32_t payload, std::size_t window = 0, double osc_amplitude = 0,
    Duration osc_period = Seconds(20)) {
  ringpaxos::ProposerConfig pc;
  pc.schedule = std::move(schedule);
  pc.payload_size = payload;
  pc.max_outstanding = window;
  pc.osc_amplitude = osc_amplitude;
  pc.osc_period = osc_period;
  return d.AddProposer(ring_idx, pc);
}

}  // namespace mrp::bench
